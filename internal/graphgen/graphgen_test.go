package graphgen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPathCycleCliqueStar(t *testing.T) {
	if g := Path(5); g.N() != 5 || g.M() != 4 || !g.IsTree() {
		t.Errorf("Path(5): %v", g)
	}
	if g := Cycle(5); g.N() != 5 || g.M() != 5 || g.Girth() != 5 {
		t.Errorf("Cycle(5): %v", g)
	}
	if g := Clique(5); g.M() != 10 || g.Diameter() != 1 {
		t.Errorf("Clique(5): %v", g)
	}
	if g := Star(6); !g.IsTree() || g.MaxDegree() != 5 {
		t.Errorf("Star(6): %v", g)
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, 2)
	if g.N() != 12 || !g.IsTree() {
		t.Fatalf("Caterpillar(4,2): n=%d tree=%v", g.N(), g.IsTree())
	}
	// Spine endpoints have degree 1 (spine) + 2 legs = 3.
	if g.Degree(0) != 3 {
		t.Errorf("spine endpoint degree = %d, want 3", g.Degree(0))
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(4)
	if g.N() != 15 || !g.IsTree() {
		t.Fatalf("CBT(4): n=%d", g.N())
	}
	if g.Degree(0) != 2 {
		t.Errorf("root degree = %d, want 2", g.Degree(0))
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 10, 50, 200} {
		g := RandomTree(n, rng)
		if n >= 1 && !g.Connected() {
			t.Errorf("RandomTree(%d) not connected", n)
		}
		if g.M() != n-1 && n >= 1 {
			t.Errorf("RandomTree(%d): m = %d", n, g.M())
		}
	}
}

func TestRandomTreeQuick(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%60) + 1
		g := RandomTree(n, rand.New(rand.NewSource(seed)))
		return g.N() == n && (n == 1 || g.IsTree())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomTreeOfDepthRespectsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, d int }{{20, 2}, {50, 3}, {100, 5}} {
		g := RandomTreeOfDepth(tc.n, tc.d, rng)
		if !g.IsTree() {
			t.Fatalf("not a tree: n=%d d=%d", tc.n, tc.d)
		}
		if ecc := g.Eccentricity(0); ecc > tc.d {
			t.Errorf("depth from root = %d, want <= %d", ecc, tc.d)
		}
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomConnected(30, 20, rng)
	if !g.Connected() {
		t.Fatal("RandomConnected produced a disconnected graph")
	}
	if g.M() < 29 {
		t.Errorf("m = %d < n-1", g.M())
	}
}

func TestBoundedTreedepthWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		n, td int
	}{{10, 2}, {30, 3}, {60, 4}} {
		g, parent := BoundedTreedepth(tc.n, tc.td, 0.4, rng)
		if !g.Connected() {
			t.Fatalf("n=%d t=%d: disconnected", tc.n, tc.td)
		}
		// Witness depth respects the bound.
		depth := func(v int) int {
			d := 1
			for parent[v] != -1 {
				v = parent[v]
				d++
			}
			return d
		}
		for v := 0; v < tc.n; v++ {
			if depth(v) > tc.td {
				t.Errorf("witness depth of %d is %d > %d", v, depth(v), tc.td)
			}
		}
		// Every edge joins an ancestor/descendant pair of the witness.
		anc := func(u, v int) bool {
			for x := v; x != -1; x = parent[x] {
				if x == u {
					return true
				}
			}
			return false
		}
		for _, e := range g.Edges() {
			if !anc(e[0], e[1]) && !anc(e[1], e[0]) {
				t.Errorf("edge %v not along witness tree", e)
			}
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("Grid(3,4): n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Error("grid disconnected")
	}
}

func TestSpider(t *testing.T) {
	g := Spider(3, 4)
	if g.N() != 13 || !g.IsTree() || g.Degree(0) != 3 {
		t.Fatalf("Spider(3,4): n=%d deg0=%d", g.N(), g.Degree(0))
	}
}

func TestTreedepthGadgetEqualMatchingsGives8Cycles(t *testing.T) {
	m := 4
	perm := []int{2, 0, 3, 1}
	gd, err := TreedepthGadget(m, perm, perm)
	if err != nil {
		t.Fatal(err)
	}
	if gd.G.N() != 8*m+1 {
		t.Fatalf("n = %d, want %d", gd.G.N(), 8*m+1)
	}
	if !gd.G.Connected() {
		t.Fatal("gadget disconnected")
	}
	// Remove u: the rest must be a disjoint union of m cycles of length 8.
	h, _ := gd.G.RemoveVertex(gd.G.N() - 1)
	comps := h.Components()
	if len(comps) != m {
		t.Fatalf("got %d components without u, want %d", len(comps), m)
	}
	for _, c := range comps {
		if len(c) != 8 {
			t.Errorf("component size %d, want 8", len(c))
		}
	}
	for v := 0; v < h.N(); v++ {
		if h.Degree(v) != 2 {
			t.Errorf("vertex %d degree %d, want 2 (union of cycles)", v, h.Degree(v))
		}
	}
}

func TestTreedepthGadgetUnequalMatchingsGivesLongCycle(t *testing.T) {
	m := 4
	a := []int{0, 1, 2, 3}
	b := []int{1, 0, 2, 3} // differs in a transposition -> one 16-cycle
	gd, err := TreedepthGadget(m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := gd.G.RemoveVertex(gd.G.N() - 1)
	comps := h.Components()
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[16] != 1 || sizes[8] != 2 {
		t.Errorf("component size histogram = %v, want one 16 and two 8s", sizes)
	}
}

func TestTreedepthGadgetValidation(t *testing.T) {
	if _, err := TreedepthGadget(3, []int{0, 1}, []int{0, 1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := TreedepthGadget(3, []int{0, 0, 1}, []int{0, 1, 2}); err == nil {
		t.Error("non-permutation accepted")
	}
}

func TestFPFGadget(t *testing.T) {
	// Two identical 3-vertex paths rooted at one end.
	parent := []int{-1, 0, 1}
	gd, err := FPFGadget(parent, parent)
	if err != nil {
		t.Fatal(err)
	}
	if gd.G.N() != 8 || !gd.G.IsTree() {
		t.Fatalf("gadget n=%d tree=%v", gd.G.N(), gd.G.IsTree())
	}
	if gd.MiddleSize() != 2 {
		t.Errorf("middle size = %d, want 2", gd.MiddleSize())
	}
}

func TestFPFGadgetValidation(t *testing.T) {
	if _, err := FPFGadget([]int{0}, []int{-1}); err == nil {
		t.Error("non-root-first parent array accepted")
	}
	if _, err := FPFGadget(nil, []int{-1}); err == nil {
		t.Error("empty tree accepted")
	}
	if _, err := FPFGadget([]int{-1, 5}, []int{-1}); err == nil {
		t.Error("out-of-range parent accepted")
	}
}

func TestFigure2Gadget(t *testing.T) {
	marks := []bool{true, false, true, true}
	gd, err := Figure2Gadget(4, marks, marks)
	if err != nil {
		t.Fatal(err)
	}
	if !gd.G.Connected() {
		t.Fatal("figure-2 gadget disconnected")
	}
	if len(gd.VA) != 4 || len(gd.VB) != 4 || gd.MiddleSize() != 2 {
		t.Errorf("partition sizes wrong: %d %d %d", len(gd.VA), len(gd.VB), gd.MiddleSize())
	}
}

func TestCycleTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Cycle(2)")
		}
	}()
	Cycle(2)
}

// KTree has exactly C(k+1,2) + (n-k-1)k edges; PartialKTree stays
// connected at any keep probability and never exceeds the k-tree.
func TestKTreeGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, k := range []int{1, 2, 4} {
		for _, n := range []int{k + 1, k + 2, 30} {
			g, attach := KTree(n, k, rng)
			wantM := k*(k+1)/2 + (n-k-1)*k
			if g.M() != wantM {
				t.Fatalf("KTree(%d,%d): m=%d, want %d", n, k, g.M(), wantM)
			}
			if !g.Connected() {
				t.Fatalf("KTree(%d,%d) disconnected", n, k)
			}
			for v := 0; v <= k; v++ {
				if attach[v] != nil {
					t.Fatalf("seed vertex %d has an attachment", v)
				}
			}
			for v := k + 1; v < n; v++ {
				if len(attach[v]) != k {
					t.Fatalf("vertex %d attached to %d vertices, want %d", v, len(attach[v]), k)
				}
				for _, u := range attach[v] {
					if u >= v || !g.HasEdge(u, v) {
						t.Fatalf("vertex %d attachment %v not realized as edges", v, attach[v])
					}
				}
			}
		}
	}
	for _, keep := range []float64{0, 0.5, 1} {
		g, _ := PartialKTree(40, 3, keep, rng)
		if !g.Connected() {
			t.Fatalf("PartialKTree(keep=%.1f) disconnected", keep)
		}
		full, _ := KTree(40, 3, rng)
		if g.M() > full.M() {
			t.Fatalf("partial k-tree has more edges (%d) than a full one (%d)", g.M(), full.M())
		}
	}
}

func TestKTreePanicsOnBadParams(t *testing.T) {
	for _, bad := range [][2]int{{3, 0}, {2, 2}, {0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KTree(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			KTree(bad[0], bad[1], rand.New(rand.NewSource(1)))
		}()
	}
}
