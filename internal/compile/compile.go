// Package compile is the formula compilation layer of the certification
// engine: it lowers a parsed FO/MSO sentence into whichever certification
// backend the registry entry names —
//
//   - Tree: a Theorem 2.2 scheme on trees. Library MSO/FO sentences are
//     recognized by canonical form (NNF + alpha-renaming) and mapped to
//     their hand-built UOP automata; other FO sentences compile through
//     rank-k type discovery (internal/automata); MSO sentences outside
//     the library are rejected with an explanatory error.
//   - Treewidth: a Courcelle-style property for the tw-mso scheme, via
//     the clique-local EMSO compiler (internal/treewidth).
//   - Universal: the generic whole-graph scheme with the sentence decided
//     by direct model checking (internal/core).
//
// The package also owns the enum alias tables: every property name the
// registry historically dispatched on ("perfect-matching", "2-colorable",
// "connected", ...) is defined here as an alias for a library sentence, so
// the enum path and the formula path provably certify the same thing —
// the three per-scheme property switches collapse into this one table.
package compile

import (
	"fmt"

	"repro/internal/automata"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/treewidth"
)

// MetricBackends counts sentence lowerings by backend, labeled
// backend=library|rankk|emso|modelcheck. The counters live in the
// package-level obs.Default() registry — this layer has no handle on a
// server's registry, and servers merge Default into their exposition.
const MetricBackends = "compile_backend_total"

// countBackend records one lowering through the named backend.
func countBackend(backend string) {
	obs.Default().Counter(MetricBackends,
		"formula lowerings by certification backend",
		obs.L("backend", backend)).Inc()
}

// Alias is one enum property name defined as a library sentence.
type Alias struct {
	// Kind is the registry scheme kind the name belongs to.
	Kind string
	// Name is the historic enum value.
	Name string
	// Formula is the defining sentence.
	Formula logic.Formula
}

// Source renders the defining sentence (for docs and listings).
func (a Alias) Source() string { return a.Formula.String() }

// treeBuilder couples a tree-mso alias with its hand-built automaton
// scheme. The canonical form of the alias sentence is the dispatch key, so
// any alpha-variant or implies-variant spelling of a library sentence hits
// the same automaton the enum name builds.
type treeBuilder struct {
	alias Alias
	build func() (*automata.TreeScheme, error)
}

var treeBuilders = []treeBuilder{
	{Alias{"tree-mso", "perfect-matching", logic.PerfectMatching()}, automata.NewPerfectMatchingScheme},
	{Alias{"tree-mso", "is-star", logic.DiameterAtMost2()}, automata.NewStarScheme},
	{Alias{"tree-mso", "max-degree-<=2", logic.MaxDegreeAtMost(2)}, func() (*automata.TreeScheme, error) { return automata.NewMaxDegreeScheme(2) }},
	{Alias{"tree-mso", "max-degree-<=3", logic.MaxDegreeAtMost(3)}, func() (*automata.TreeScheme, error) { return automata.NewMaxDegreeScheme(3) }},
	{Alias{"tree-mso", "diameter-<=4", logic.DiameterAtMost(4)}, func() (*automata.TreeScheme, error) { return automata.NewDiameterScheme(4) }},
	{Alias{"tree-mso", "leaves->=3", logic.LeavesAtLeast(3)}, func() (*automata.TreeScheme, error) { return automata.NewLeavesAtLeastScheme(3) }},
}

// twAliases and universalAliases name the sentences behind the other two
// historic enums. The tw-mso names resolve through the same EMSO compiler
// as arbitrary formulas; the universal names additionally keep their
// native Go predicates in the registry (a formula evaluates by exhaustive
// model checking, which for MSO sentences is capped at
// logic.MaxSetQuantVertices vertices — the native predicates have no such
// limit, so the enum path stays the scalable one).
var twAliases = []Alias{
	{"tw-mso", "tw-bound", logic.TrueSentence()},
	{"tw-mso", "2-colorable", logic.TwoColorable()},
	{"tw-mso", "3-colorable", logic.ThreeColorable()},
}

var universalAliases = []Alias{
	{"universal", "connected", logic.Connected()},
	{"universal", "diameter-<=2", logic.DiameterAtMost2()},
	{"universal", "is-tree", logic.IsTree()},
}

// canonicalTreeIndex maps canonical sentence forms to tree builders.
var canonicalTreeIndex = func() map[string]treeBuilder {
	idx := make(map[string]treeBuilder, len(treeBuilders))
	for _, b := range treeBuilders {
		idx[logic.CanonicalString(b.alias.Formula)] = b
	}
	return idx
}()

// Aliases lists the enum aliases of a scheme kind, in enum order.
func Aliases(kind string) []Alias {
	switch kind {
	case "tree-mso":
		out := make([]Alias, len(treeBuilders))
		for i, b := range treeBuilders {
			out[i] = b.alias
		}
		return out
	case "tw-mso":
		return append([]Alias(nil), twAliases...)
	case "universal":
		return append([]Alias(nil), universalAliases...)
	default:
		return nil
	}
}

// AliasNames lists the enum values of a scheme kind, in enum order.
func AliasNames(kind string) []string {
	aliases := Aliases(kind)
	out := make([]string, len(aliases))
	for i, a := range aliases {
		out[i] = a.Name
	}
	return out
}

// AliasFormula resolves an enum value to its defining sentence.
func AliasFormula(kind, name string) (logic.Formula, bool) {
	for _, a := range Aliases(kind) {
		if a.Name == name {
			return a.Formula, true
		}
	}
	return nil, false
}

// PropertyCacheKey returns the canonical sentence an enum value compiles
// through, for scheme kinds whose enum path is the formula path (tree-mso,
// tw-mso). The engine uses it to give an enum request and an equivalent
// formula request the same compile-cache key. Universal enum names keep
// native predicates distinct from the formula path and report false.
func PropertyCacheKey(kind, name string) (string, bool) {
	switch kind {
	case "tree-mso", "tw-mso":
		if f, ok := AliasFormula(kind, name); ok {
			return logic.CanonicalString(f), true
		}
	}
	return "", false
}

// Tree lowers a sentence to a Theorem 2.2 certification scheme on trees:
// canonical library match first (hand-built automaton, the same object the
// enum name builds), then rank-k type discovery for FO, with a clear
// error for MSO sentences outside the library.
func Tree(f logic.Formula) (cert.Scheme, error) {
	if !logic.IsSentence(f) {
		return nil, fmt.Errorf("compile: tree scheme needs a sentence, got %s", f)
	}
	if b, ok := canonicalTreeIndex[logic.CanonicalString(f)]; ok {
		countBackend("library")
		return b.build()
	}
	if logic.IsFO(f) {
		countBackend("rankk")
		return automata.NewTypeScheme(f)
	}
	return nil, fmt.Errorf("compile: MSO sentence %s is outside the tree automaton library "+
		"(library sentences: %v); FO sentences compile via type discovery", f, AliasNames("tree-mso"))
}

// Treewidth lowers a sentence to a tw-mso property via the clique-local
// EMSO compiler.
func Treewidth(f logic.Formula) (treewidth.Property, error) {
	countBackend("emso")
	if name, ok := aliasNameFor("tw-mso", f); ok {
		// Library sentences keep their short display name.
		if p, ok := treewidth.PropertyByName(name); ok {
			return p, nil
		}
	}
	return treewidth.PropertyFromFormula(f)
}

// Universal lowers a sentence to the generic whole-graph scheme, deciding
// it by direct model checking.
func Universal(f logic.Formula) (cert.Scheme, error) {
	countBackend("modelcheck")
	return core.NewUniversalFormula(f)
}

// aliasNameFor finds the enum value whose sentence is alpha-equivalent to f.
func aliasNameFor(kind string, f logic.Formula) (string, bool) {
	canon := logic.CanonicalString(f)
	for _, a := range Aliases(kind) {
		if logic.CanonicalString(a.Formula) == canon {
			return a.Name, true
		}
	}
	return "", false
}
