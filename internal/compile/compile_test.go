package compile

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/automata"
	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/logic"
)

// TestTreeAliasesHitHandBuiltAutomata checks the tentpole's compatibility
// contract for trees: compiling an enum's defining sentence (in any
// alpha-equivalent spelling) yields the very same hand-built automaton
// scheme the enum name builds — identical name, identical certificates.
func TestTreeAliasesHitHandBuiltAutomata(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"path-8", graphgen.Path(8)},
		{"star-7", graphgen.Star(7)},
		{"random-9", graphgen.RandomTree(9, rng)},
	}
	for _, b := range treeBuilders {
		enumScheme, err := b.build()
		if err != nil {
			t.Fatalf("%s: enum build: %v", b.alias.Name, err)
		}
		formulaScheme, err := Tree(b.alias.Formula)
		if err != nil {
			t.Fatalf("%s: formula build: %v", b.alias.Name, err)
		}
		if enumScheme.Name() != formulaScheme.Name() {
			t.Fatalf("%s: scheme names diverge: %q vs %q", b.alias.Name, enumScheme.Name(), formulaScheme.Name())
		}
		// An alpha-variant spelling must hit the same automaton.
		variant, err := Tree(logic.Canonicalize(b.alias.Formula))
		if err != nil || variant.Name() != enumScheme.Name() {
			t.Fatalf("%s: canonical respelling missed the library: %v", b.alias.Name, err)
		}
		for _, gt := range graphs {
			eh, err1 := enumScheme.Holds(gt.g)
			fh, err2 := formulaScheme.Holds(gt.g)
			if (err1 == nil) != (err2 == nil) || eh != fh {
				t.Fatalf("%s on %s: Holds diverges: (%v,%v) vs (%v,%v)", b.alias.Name, gt.name, eh, err1, fh, err2)
			}
			if !eh {
				continue
			}
			ea, err := enumScheme.Prove(gt.g)
			if err != nil {
				t.Fatalf("%s on %s: enum prove: %v", b.alias.Name, gt.name, err)
			}
			fa, err := formulaScheme.Prove(gt.g)
			if err != nil {
				t.Fatalf("%s on %s: formula prove: %v", b.alias.Name, gt.name, err)
			}
			for v := range ea {
				if string(ea[v]) != string(fa[v]) {
					t.Fatalf("%s on %s: certificates diverge at vertex %d", b.alias.Name, gt.name, v)
				}
			}
		}
	}
}

// TestTreeAliasSemantics cross-checks every alias sentence against the
// automaton it aliases, by brute-force evaluation on random trees: the
// table is only sound if formula and automaton recognize the same
// language.
func TestTreeAliasSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, b := range treeBuilders {
		scheme, err := b.build()
		if err != nil {
			t.Fatal(err)
		}
		fo := logic.IsFO(b.alias.Formula)
		for trial := 0; trial < 12; trial++ {
			n := 1 + rng.Intn(10)
			if !fo {
				n = 1 + rng.Intn(8) // MSO evaluation is 2^n
			}
			g := graphgen.RandomTree(n, rng)
			want, err := scheme.Holds(g)
			if err != nil {
				t.Fatalf("%s: Holds: %v", b.alias.Name, err)
			}
			got, err := logic.Eval(b.alias.Formula, logic.NewModel(g))
			if err != nil {
				t.Fatalf("%s: Eval: %v", b.alias.Name, err)
			}
			if got != want {
				t.Fatalf("%s: alias sentence disagrees with automaton on n=%d (%v): formula=%v automaton=%v",
					b.alias.Name, n, g.Edges(), got, want)
			}
		}
	}
}

// TestUniversalAliasSemantics cross-checks the universal alias sentences
// against their native predicates on small graphs.
func TestUniversalAliasSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, a := range universalAliases {
		for trial := 0; trial < 10; trial++ {
			n := 2 + rng.Intn(7)
			var g *graph.Graph
			switch trial % 3 {
			case 0:
				g = graphgen.RandomTree(n, rng)
			case 1:
				g = graphgen.Cycle(n + 1)
			default:
				g = graphgen.Clique(n)
			}
			var want bool
			switch a.Name {
			case "connected":
				want = g.Connected()
			case "diameter-<=2":
				d := g.Diameter()
				want = d >= 0 && d <= 2
			case "is-tree":
				want = g.IsTree()
			default:
				t.Fatalf("unknown universal alias %q", a.Name)
			}
			got, err := logic.Eval(a.Formula, logic.NewModel(g))
			if err != nil {
				t.Fatalf("%s: Eval: %v", a.Name, err)
			}
			if got != want {
				t.Fatalf("%s: alias sentence disagrees with native predicate on n=%d: formula=%v native=%v",
					a.Name, g.N(), got, want)
			}
		}
	}
}

// TestTreeFOFallback compiles a non-library FO sentence through type
// discovery and runs it end to end.
func TestTreeFOFallback(t *testing.T) {
	s, err := Tree(logic.MustParse("forall x. exists y. x ~ y"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*automata.TypeScheme); !ok {
		t.Fatalf("expected a type-discovery scheme, got %T", s)
	}
	g := graphgen.Path(10)
	a, err := s.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cert.RunSequential(g, s, a)
	if err != nil || !res.Accepted {
		t.Fatalf("FO fallback proof rejected: %v %v", res.Rejecters, err)
	}
}

// TestTreeRejectsUnknownMSO demands a clear error for MSO sentences the
// tree backend cannot lower.
func TestTreeRejectsUnknownMSO(t *testing.T) {
	if _, err := Tree(logic.Connected()); err == nil {
		t.Fatal("Tree accepted an MSO sentence outside the library")
	}
	if _, err := Tree(logic.MustParse("x ~ y")); err == nil {
		t.Fatal("Tree accepted a non-sentence")
	}
}

// TestUniversalFormulaScheme certifies HasDominatingVertex — a sentence in
// no enum — through the universal backend.
func TestUniversalFormulaScheme(t *testing.T) {
	s, err := Universal(logic.HasDominatingVertex())
	if err != nil {
		t.Fatal(err)
	}
	star := graphgen.Star(9)
	a, err := s.Prove(star)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cert.RunSequential(star, s, a)
	if err != nil || !res.Accepted {
		t.Fatalf("honest proof rejected: %v %v", res.Rejecters, err)
	}
	path := graphgen.Path(6)
	if holds, err := s.Holds(path); err != nil || holds {
		t.Fatalf("HasDominatingVertex claimed to hold on P6: %v %v", holds, err)
	}
	if _, err := s.Prove(path); err == nil {
		t.Fatal("Prove succeeded on a no-instance")
	}
}

// TestTreewidthAliasKeepsShortName checks that library sentences keep
// their enum display name through the formula path.
func TestTreewidthAliasKeepsShortName(t *testing.T) {
	p, err := Treewidth(logic.TwoColorable())
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "2-colorable" {
		t.Fatalf("library sentence lost its alias name: %q", p.Name)
	}
	q, err := Treewidth(logic.TriangleFree())
	if err != nil {
		t.Fatal(err)
	}
	if q.Name == "2-colorable" || q.Phi == nil {
		t.Fatalf("non-library sentence compiled wrongly: %+v", q)
	}
}

// TestPropertyCacheKeyUnifiesEnumAndFormula checks the key bridge the
// engine uses.
func TestPropertyCacheKeyUnifiesEnumAndFormula(t *testing.T) {
	key, ok := PropertyCacheKey("tree-mso", "max-degree-<=2")
	if !ok {
		t.Fatal("no cache key for tree-mso enum")
	}
	if want := logic.CanonicalString(logic.MaxDegreeAtMost(2)); key != want {
		t.Fatalf("cache key mismatch: %q vs %q", key, want)
	}
	if _, ok := PropertyCacheKey("universal", "connected"); ok {
		t.Fatal("universal enum must not share keys with the formula path (different deciders)")
	}
	if _, ok := PropertyCacheKey("tree-mso", "no-such"); ok {
		t.Fatal("unknown enum produced a key")
	}
}

// TestUniversalFormulaRefusesExplosiveEvaluation pins the model-checking
// cost cap: a tiny hostile sentence with a deep set-quantifier prefix
// must error out immediately instead of evaluating 2^(s*n) subsets.
func TestUniversalFormulaRefusesExplosiveEvaluation(t *testing.T) {
	s, err := Universal(logic.MustParse(
		"forallset A. forallset B. forallset C. forallset D. exists x. x in A | !(x in A)"))
	if err != nil {
		t.Fatal(err)
	}
	g := graphgen.Path(22)
	start := time.Now()
	if _, err := s.Holds(g); err == nil {
		t.Fatal("explosive sentence evaluated without error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cost cap did not trip early: %v", elapsed)
	}
}
