package core

import (
	"math/rand"
	"testing"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/logic"
)

func TestUniversalRoundTrip(t *testing.T) {
	s := &Universal{
		PropertyName: "triangle-free",
		Property: func(g *graph.Graph) (bool, error) {
			ok, err := logic.Eval(logic.TriangleFree(), logic.NewModel(g))
			return ok, err
		},
	}
	g := graphgen.Cycle(6)
	a, res, err := cert.ProveAndVerify(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("rejected at %v", res.Rejecters)
	}
	// O(n^2)-ish size.
	if a.MaxBits() < 15 {
		t.Errorf("suspiciously small: %d bits", a.MaxBits())
	}
	if _, err := s.Prove(graphgen.Clique(3)); err == nil {
		t.Fatal("triangle proved triangle-free")
	}
}

func TestUniversalDetectsWrongDescription(t *testing.T) {
	s := &Universal{
		PropertyName: "always",
		Property:     func(g *graph.Graph) (bool, error) { return true, nil },
	}
	// Describe a path to the vertices of a star: some vertex's row is off.
	star := graphgen.Star(5)
	path := graphgen.Path(5)
	a, err := s.Prove(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cert.RunSequential(star, s, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("star accepted a path description")
	}
}

func TestUniversalSoundness(t *testing.T) {
	s := &Universal{
		PropertyName: "diameter<=2",
		Property: func(g *graph.Graph) (bool, error) {
			d := g.Diameter()
			return d >= 0 && d <= 2, nil
		},
	}
	g := graphgen.Path(6) // diameter 5
	rng := rand.New(rand.NewSource(8))
	honest, err := s.Prove(graphgen.Star(6))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cert.ProbeSoundness(g, s, []cert.Assignment{honest}, honest.MaxBits(), 150, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breaches != 0 {
		t.Fatalf("%d breaches", rep.Breaches)
	}
}

func TestExistentialFORoundTrip(t *testing.T) {
	s, err := NewExistentialFO(logic.IndependentSetOfSize(3))
	if err != nil {
		t.Fatal(err)
	}
	g := graphgen.Star(7) // leaves form an independent set
	a, res, err := cert.ProveAndVerify(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("rejected at %v", res.Rejecters)
	}
	// O(q log n): must be far below the universal scheme's n^2/2.
	if a.MaxBits() > 300 {
		t.Errorf("certificate unexpectedly large: %d bits", a.MaxBits())
	}
	// No-instance: K4 has no independent pair.
	if _, err := s.Prove(graphgen.Clique(4)); err == nil {
		t.Fatal("clique proved to have an independent set of 3")
	}
}

func TestExistentialFORejectsUniversalSentences(t *testing.T) {
	if _, err := NewExistentialFO(logic.DiameterAtMost2()); err == nil {
		t.Fatal("universal sentence accepted")
	}
	if _, err := NewExistentialFO(logic.TwoColorable()); err == nil {
		t.Fatal("MSO sentence accepted")
	}
}

func TestExistentialFOSoundness(t *testing.T) {
	s, err := NewExistentialFO(logic.MustParse(
		"exists x. exists y. exists z. x ~ y & y ~ z & x ~ z")) // triangle
	if err != nil {
		t.Fatal(err)
	}
	g := graphgen.Cycle(6) // no triangle
	rng := rand.New(rand.NewSource(21))
	honest, err := s.Prove(graphgen.Clique(4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cert.ProbeSoundness(g, s, []cert.Assignment{honest}, honest.MaxBits(), 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breaches != 0 {
		t.Fatalf("%d breaches", rep.Breaches)
	}
}

func TestExistentialFOFakeWitnessDetected(t *testing.T) {
	// Claim a triangle on C4 using phantom adjacency bits: the witnesses
	// exist but their matrix rows are lies; the witness vertices catch it.
	s, err := NewExistentialFO(logic.MustParse(
		"exists x. exists y. exists z. x ~ y & y ~ z & x ~ z"))
	if err != nil {
		t.Fatal(err)
	}
	g := graphgen.Cycle(4)
	// Build certificates by proving on K4 with the same IDs 1..4, then
	// replaying on C4: structure trees are broken or rows mismatch.
	honest, err := s.Prove(graphgen.Clique(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cert.RunSequential(g, s, honest)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("K4 triangle certificate accepted on C4")
	}
}

func TestDepth2FOAgainstDirectEvaluation(t *testing.T) {
	sentences := []logic.Formula{
		logic.IsClique(),
		logic.HasDominatingVertex(),
		logic.HasAtMostOneVertex(),
		logic.MustParse("forall x. exists y. x ~ y"),            // no isolated vertex: true on connected n>=2
		logic.MustParse("exists x. forall y. x = y | x ~ y"),    // dominating vertex again
		logic.MustParse("!(forall x. forall y. x = y | x ~ y)"), // not a clique
	}
	graphs := []*graph.Graph{
		graphgen.Path(1), graphgen.Path(2), graphgen.Path(5),
		graphgen.Clique(4), graphgen.Star(5), graphgen.Cycle(5), graphgen.Cycle(4),
	}
	for _, f := range sentences {
		s, err := NewDepth2FO(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range graphs {
			direct, err := logic.Eval(f, logic.NewModel(g))
			if err != nil {
				t.Fatal(err)
			}
			viaScheme, err := s.Holds(g)
			if err != nil {
				t.Fatal(err)
			}
			if direct != viaScheme {
				t.Errorf("%s on %v: direct %v, classification %v", f, g, direct, viaScheme)
			}
		}
	}
}

func TestDepth2FORoundTrip(t *testing.T) {
	s, err := NewDepth2FO(logic.HasDominatingVertex())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.Graph{graphgen.Star(8), graphgen.Clique(5), graphgen.Path(1), graphgen.Path(2)} {
		a, res, err := cert.ProveAndVerify(g, s)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !res.Accepted {
			t.Fatalf("%v rejected at %v", g, res.Rejecters)
		}
		if a.MaxBits() > 200 {
			t.Errorf("%v: %d bits, want O(log n)", g, a.MaxBits())
		}
	}
	if _, err := s.Prove(graphgen.Cycle(6)); err == nil {
		t.Fatal("C6 proved to have a dominating vertex")
	}
}

func TestDepth2FONegatedClique(t *testing.T) {
	s, err := NewDepth2FO(logic.MustParse("!(forall x. forall y. x = y | x ~ y)"))
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := cert.ProveAndVerify(graphgen.Path(5), s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("P5 (non-clique) rejected at %v", res.Rejecters)
	}
	if _, err := s.Prove(graphgen.Clique(4)); err == nil {
		t.Fatal("K4 proved non-clique")
	}
}

func TestDepth2FOSoundness(t *testing.T) {
	s, err := NewDepth2FO(logic.HasDominatingVertex())
	if err != nil {
		t.Fatal(err)
	}
	g := graphgen.Cycle(6)
	rng := rand.New(rand.NewSource(2))
	honest, err := s.Prove(graphgen.Star(6))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cert.ProbeSoundness(g, s, []cert.Assignment{honest}, honest.MaxBits(), 250, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breaches != 0 {
		t.Fatalf("%d breaches", rep.Breaches)
	}
}

func TestDepth2FORejectsDeepFormulas(t *testing.T) {
	if _, err := NewDepth2FO(logic.DiameterAtMost2()); err == nil {
		t.Fatal("depth-3 sentence accepted")
	}
}

func TestUniversalVsExistentialSizes(t *testing.T) {
	// The headline scaling contrast: universal O(n^2) vs existential
	// O(q log n) on the same instances.
	f := logic.HasEdge()
	ex, err := NewExistentialFO(f)
	if err != nil {
		t.Fatal(err)
	}
	uni := &Universal{PropertyName: "has-edge", Property: func(g *graph.Graph) (bool, error) {
		return g.M() > 0, nil
	}}
	for _, n := range []int{16, 64} {
		g := graphgen.Path(n)
		ae, err := ex.Prove(g)
		if err != nil {
			t.Fatal(err)
		}
		au, err := uni.Prove(g)
		if err != nil {
			t.Fatal(err)
		}
		if ae.MaxBits() >= au.MaxBits() {
			t.Errorf("n=%d: existential %d bits >= universal %d bits", n, ae.MaxBits(), au.MaxBits())
		}
	}
}
