// Package core implements the generic certification schemes the paper
// uses as context for its main results:
//
//   - Universal: any property has an O(n^2)-bit certification by writing
//     the whole graph into every certificate (§1.2);
//   - ExistentialFO: existential FO sentences with q quantifiers have
//     O(q log n)-bit certifications (Lemma 2.1 / A.2);
//   - Depth2FO: FO sentences of quantifier depth 2 have O(log n)-bit
//     certifications (Lemma 2.1 / A.3) via the paper's classification
//     into "at most one vertex" / "clique" / "dominating vertex".
package core

import (
	"fmt"
	"sort"

	"repro/internal/bitio"
	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/logic"
	"repro/internal/spanning"
)

// Universal certifies an arbitrary decidable property by describing the
// full graph to every vertex: the certificate holds the sorted identifier
// list and the adjacency matrix (O(n^2 + n log n) bits). Each vertex
// checks that all neighbours carry the identical description, that its
// own row matches its actual view, and that the property holds on the
// described graph.
type Universal struct {
	PropertyName string
	Property     func(g *graph.Graph) (bool, error)
}

var _ cert.Scheme = (*Universal)(nil)

// Name implements cert.Scheme.
func (s *Universal) Name() string { return "universal(" + s.PropertyName + ")" }

// Holds implements cert.Scheme.
func (s *Universal) Holds(g *graph.Graph) (bool, error) { return s.Property(g) }

// Prove implements cert.Scheme.
func (s *Universal) Prove(g *graph.Graph) (cert.Assignment, error) {
	holds, err := s.Property(g)
	if err != nil {
		return nil, err
	}
	if !holds {
		return nil, fmt.Errorf("core: %s: property does not hold", s.Name())
	}
	var w bitio.Writer
	encodeGraph(&w, g)
	desc := w.Clone()
	a := make(cert.Assignment, g.N())
	for v := range a {
		a[v] = append(cert.Certificate(nil), desc...)
	}
	return a, nil
}

// maxUniversalEvalOps bounds the model-checking work one formula-driven
// predicate call may trigger (~1.7e7 atom evaluations, well under a
// second). Formulas arrive over HTTP: the wire guards bound parse cost,
// this bounds evaluation cost, so a tiny sentence with a deep quantifier
// prefix ("forallset A. forallset B. ...") errors out instead of pinning
// a server CPU essentially forever.
const maxUniversalEvalOps = 1 << 24

// NewUniversalFormula certifies an arbitrary FO/MSO sentence with the
// universal whole-graph scheme, deciding the property by direct model
// checking (logic.Eval). This is the formula-first replacement for the
// named-predicate dispatch: any sentence works, at the generic scheme's
// O(n^2)-bit price — FO evaluation is n^depth, MSO evaluation is limited
// to logic.MaxSetQuantVertices vertices, and every call refuses work
// beyond maxUniversalEvalOps with an error rather than guessing (the
// named predicates are the scalable path).
func NewUniversalFormula(f logic.Formula) (*Universal, error) {
	if !logic.IsSentence(f) {
		return nil, fmt.Errorf("core: universal formula scheme needs a sentence, got %s", f)
	}
	return &Universal{
		PropertyName: f.String(),
		Property: func(g *graph.Graph) (bool, error) {
			if cost := logic.EvalCost(f, g.N()); cost > maxUniversalEvalOps {
				return false, fmt.Errorf("core: universal(%s): model checking needs ~%.3g atom evaluations on n=%d (limit %d); use a named predicate or a smaller graph",
					f, cost, g.N(), maxUniversalEvalOps)
			}
			return logic.Eval(f, logic.NewModel(g))
		},
	}, nil
}

// Verify implements cert.Scheme.
func (s *Universal) Verify(v cert.View) bool {
	g, err := decodeGraph(v.Cert)
	if err != nil {
		return false
	}
	for _, nb := range v.Neighbors {
		if !sameBits(v.Cert, nb.Cert) {
			return false
		}
	}
	// The row of our own identifier must match our actual neighbourhood.
	self, ok := g.IndexOf(v.ID)
	if !ok {
		return false
	}
	claimed := map[graph.ID]bool{}
	for _, w := range g.Neighbors(self) {
		claimed[g.IDOf(w)] = true
	}
	if len(claimed) != len(v.Neighbors) {
		return false
	}
	for _, nb := range v.Neighbors {
		if !claimed[nb.ID] {
			return false
		}
	}
	holds, err := s.Property(g)
	return err == nil && holds
}

func encodeGraph(w *bitio.Writer, g *graph.Graph) {
	w.WriteUvarint(uint64(g.N()))
	ids := make([]graph.ID, g.N())
	for v := 0; v < g.N(); v++ {
		ids[v] = g.IDOf(v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w.WriteUvarint(uint64(id))
	}
	pos := map[graph.ID]int{}
	for i, id := range ids {
		pos[id] = i
	}
	// Upper-triangle adjacency bits in sorted-ID order.
	mat := make([]bool, g.N()*g.N())
	for _, e := range g.Edges() {
		i, j := pos[g.IDOf(e[0])], pos[g.IDOf(e[1])]
		mat[i*g.N()+j] = true
		mat[j*g.N()+i] = true
	}
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			w.WriteBool(mat[i*g.N()+j])
		}
	}
}

func decodeGraph(c cert.Certificate) (*graph.Graph, error) {
	r := bitio.NewReader(c)
	n64, err := r.ReadUvarint()
	if err != nil || n64 == 0 || n64 > 1<<20 {
		return nil, fmt.Errorf("core: bad vertex count")
	}
	n := int(n64)
	ids := make([]graph.ID, n)
	for i := range ids {
		id, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		ids[i] = graph.ID(id)
	}
	g, err := graph.NewWithIDs(ids)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b, err := r.ReadBool()
			if err != nil {
				return nil, err
			}
			if b {
				if err := g.AddEdge(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("core: trailing bits")
	}
	return g, nil
}

func sameBits(a, b cert.Certificate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ExistentialFO is the Lemma A.2 scheme for sentences whose prenex form
// is purely existential: the certificate lists the q witness identifiers,
// the q x q adjacency matrix among them, and a spanning-tree label per
// witness (certifying the witness exists). O(q log n + q^2) bits.
type ExistentialFO struct {
	Formula logic.Formula

	prefix []logic.Quantifier
	matrix logic.Formula
}

var _ cert.Scheme = (*ExistentialFO)(nil)

// NewExistentialFO validates that the sentence is existential and
// prepares its prenex form.
func NewExistentialFO(f logic.Formula) (*ExistentialFO, error) {
	if !logic.IsSentence(f) || !logic.IsFO(f) {
		return nil, fmt.Errorf("core: ExistentialFO needs an FO sentence")
	}
	prefix, matrix, err := logic.Prenex(f)
	if err != nil {
		return nil, err
	}
	for _, q := range prefix {
		if q.Universal {
			return nil, fmt.Errorf("core: %s is not existential", f)
		}
	}
	return &ExistentialFO{Formula: f, prefix: prefix, matrix: matrix}, nil
}

// Name implements cert.Scheme.
func (s *ExistentialFO) Name() string { return fmt.Sprintf("existential-fo(%s)", s.Formula) }

// Holds implements cert.Scheme.
func (s *ExistentialFO) Holds(g *graph.Graph) (bool, error) {
	return logic.Eval(s.Formula, logic.NewModel(g))
}

// witnesses searches for an assignment of the prefix variables satisfying
// the matrix (brute force n^q).
func (s *ExistentialFO) witnesses(g *graph.Graph) ([]int, error) {
	q := len(s.prefix)
	pick := make([]int, q)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == q {
			env := map[logic.Var]int{}
			for j, qu := range s.prefix {
				env[qu.V] = pick[j]
			}
			ok, err := logic.EvalWithAssignment(s.matrix, logic.NewModel(g), env, nil)
			return err == nil && ok
		}
		for v := 0; v < g.N(); v++ {
			pick[i] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	if !rec(0) {
		return nil, fmt.Errorf("core: %s: no witnesses", s.Name())
	}
	return pick, nil
}

// Prove implements cert.Scheme.
func (s *ExistentialFO) Prove(g *graph.Graph) (cert.Assignment, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("core: %s: graph must be connected", s.Name())
	}
	wit, err := s.witnesses(g)
	if err != nil {
		return nil, err
	}
	q := len(wit)
	// Spanning-tree labels rooted at each witness.
	trees := make([][]spanning.Label, q)
	for i, v := range wit {
		labels, err := spanning.LabelsFor(g, v)
		if err != nil {
			return nil, err
		}
		trees[i] = labels
	}
	a := make(cert.Assignment, g.N())
	for v := 0; v < g.N(); v++ {
		var w bitio.Writer
		w.WriteUvarint(uint64(q))
		for _, x := range wit {
			w.WriteUvarint(uint64(g.IDOf(x)))
		}
		for i := 0; i < q; i++ {
			for j := 0; j < q; j++ {
				w.WriteBool(g.HasEdge(wit[i], wit[j]))
			}
		}
		for i := 0; i < q; i++ {
			trees[i][v].Encode(&w)
		}
		a[v] = w.Clone()
	}
	return a, nil
}

// decodedEx is one parsed ExistentialFO certificate.
type decodedEx struct {
	wit    []graph.ID
	adj    [][]bool
	labels []spanning.Label
}

func (s *ExistentialFO) decode(c cert.Certificate) (decodedEx, bool) {
	r := bitio.NewReader(c)
	q64, err := r.ReadUvarint()
	if err != nil || int(q64) != len(s.prefix) {
		return decodedEx{}, false
	}
	q := int(q64)
	out := decodedEx{wit: make([]graph.ID, q), adj: make([][]bool, q), labels: make([]spanning.Label, q)}
	for i := range out.wit {
		id, err := r.ReadUvarint()
		if err != nil {
			return decodedEx{}, false
		}
		out.wit[i] = graph.ID(id)
	}
	for i := 0; i < q; i++ {
		out.adj[i] = make([]bool, q)
		for j := 0; j < q; j++ {
			b, err := r.ReadBool()
			if err != nil {
				return decodedEx{}, false
			}
			out.adj[i][j] = b
		}
	}
	for i := 0; i < q; i++ {
		l, err := spanning.Decode(r)
		if err != nil {
			return decodedEx{}, false
		}
		out.labels[i] = l
	}
	if r.Remaining() != 0 {
		return decodedEx{}, false
	}
	return out, true
}

// Verify implements cert.Scheme.
func (s *ExistentialFO) Verify(v cert.View) bool {
	own, ok := s.decode(v.Cert)
	if !ok {
		return false
	}
	neighbors := make([]decodedEx, len(v.Neighbors))
	for i, nb := range v.Neighbors {
		nd, ok := s.decode(nb.Cert)
		if !ok {
			return false
		}
		// Witness lists and matrices must agree globally.
		for j := range own.wit {
			if nd.wit[j] != own.wit[j] {
				return false
			}
			for k := range own.wit {
				if nd.adj[j][k] != own.adj[j][k] {
					return false
				}
			}
		}
		neighbors[i] = nd
	}
	q := len(own.wit)
	// Matrix sanity: symmetric, loopless.
	for i := 0; i < q; i++ {
		if own.adj[i][i] {
			return false
		}
		for j := 0; j < q; j++ {
			if own.adj[i][j] != own.adj[j][i] {
				return false
			}
		}
	}
	// Spanning trees: structural checks per witness, rooted at it.
	for i := 0; i < q; i++ {
		nls := make([]spanning.NeighborLabel, len(neighbors))
		for k, nd := range neighbors {
			nls[k] = spanning.NeighborLabel{ID: v.Neighbors[k].ID, Label: nd.labels[i]}
		}
		if own.labels[i].Root != own.wit[i] {
			return false
		}
		if !spanning.CheckStructure(v.ID, own.labels[i], nls) {
			return false
		}
	}
	// If we are witness i, our matrix row must match reality and the
	// matrix graph must satisfy the quantifier-free part.
	for i := 0; i < q; i++ {
		if own.wit[i] != v.ID {
			continue
		}
		for j := 0; j < q; j++ {
			if j == i {
				continue
			}
			_, isNb := v.NeighborByID(own.wit[j])
			sameVertex := own.wit[j] == v.ID
			if own.adj[i][j] != (isNb && !sameVertex) {
				return false
			}
		}
		if !s.matrixHolds(own) {
			return false
		}
	}
	return true
}

// matrixHolds evaluates the quantifier-free matrix on the q-vertex graph
// described by the certificate; witnesses sharing an identifier map to
// the same vertex.
func (s *ExistentialFO) matrixHolds(d decodedEx) bool {
	// Deduplicate witness IDs into vertices.
	idToVertex := map[graph.ID]int{}
	var ids []graph.ID
	for _, id := range d.wit {
		if _, ok := idToVertex[id]; !ok {
			idToVertex[id] = len(ids)
			ids = append(ids, id)
		}
	}
	g, err := graph.NewWithIDs(ids)
	if err != nil {
		return false
	}
	for i := range d.wit {
		for j := range d.wit {
			if i < j && d.adj[i][j] {
				u, w := idToVertex[d.wit[i]], idToVertex[d.wit[j]]
				if u != w && !g.HasEdge(u, w) {
					g.MustAddEdge(u, w)
				}
			}
		}
	}
	env := map[logic.Var]int{}
	for i, qu := range s.prefix {
		env[qu.V] = idToVertex[d.wit[i]]
	}
	ok, err := logic.EvalWithAssignment(s.matrix, logic.NewModel(g), env, nil)
	return err == nil && ok
}

// Depth2FO is the Lemma A.3 scheme: any FO sentence of quantifier depth
// at most 2 is, on connected graphs, equivalent to a boolean combination
// of "the graph has at most one vertex", "the graph is a clique" and
// "the graph has a dominating vertex". The prover certifies the exact
// truth values of the three base properties with O(log n) bits (vertex
// count plus up to two evidence trees) and every vertex checks the
// combination against the sentence's truth table, computed once from the
// four prototype graphs K1, K3, K_{1,3} and P4.
type Depth2FO struct {
	Formula logic.Formula
	// verdicts[triple] caches the sentence's value per realizable triple
	// (P1, P2, P3) packed as bits: 4 -> (1,1,1), 3 -> (0,1,1),
	// 1 -> (0,0,1), 0 -> (0,0,0).
	verdicts map[uint8]bool
}

var _ cert.Scheme = (*Depth2FO)(nil)

// NewDepth2FO validates the depth bound and builds the truth table.
func NewDepth2FO(f logic.Formula) (*Depth2FO, error) {
	if !logic.IsSentence(f) || !logic.IsFO(f) {
		return nil, fmt.Errorf("core: Depth2FO needs an FO sentence")
	}
	if logic.QuantifierDepth(f) > 2 {
		return nil, fmt.Errorf("core: %s has quantifier depth %d > 2", f, logic.QuantifierDepth(f))
	}
	prototypes := map[uint8]*graph.Graph{
		tripleKey(true, true, true):    graphgen.Clique(1),
		tripleKey(false, true, true):   graphgen.Clique(3),
		tripleKey(false, false, true):  graphgen.Star(4),
		tripleKey(false, false, false): graphgen.Path(4),
	}
	verdicts := make(map[uint8]bool, len(prototypes))
	for key, proto := range prototypes {
		val, err := logic.Eval(f, logic.NewModel(proto))
		if err != nil {
			return nil, err
		}
		verdicts[key] = val
	}
	return &Depth2FO{Formula: f, verdicts: verdicts}, nil
}

func tripleKey(p1, p2, p3 bool) uint8 {
	var k uint8
	if p1 {
		k |= 4
	}
	if p2 {
		k |= 2
	}
	if p3 {
		k |= 1
	}
	return k
}

// Name implements cert.Scheme.
func (s *Depth2FO) Name() string { return fmt.Sprintf("depth2-fo(%s)", s.Formula) }

func classify(g *graph.Graph) uint8 {
	p1 := g.N() <= 1
	p2 := g.M() == g.N()*(g.N()-1)/2
	p3 := false
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == g.N()-1 {
			p3 = true
			break
		}
	}
	return tripleKey(p1, p2, p3)
}

// Holds implements cert.Scheme: the Lemma A.3 classification decides the
// sentence; tests cross-check it against direct evaluation.
func (s *Depth2FO) Holds(g *graph.Graph) (bool, error) {
	if !g.Connected() {
		return false, fmt.Errorf("core: %s: graph must be connected", s.Name())
	}
	return s.verdicts[classify(g)], nil
}

// Prove implements cert.Scheme. Certificate layout: the 3-bit claimed
// triple, the vertex count n, a count-certified spanning tree (rooted at
// a dominating vertex when P3 holds), and — only when P2 is claimed
// false — a second spanning tree rooted at a non-universal witness.
// Everything is O(log n) bits.
func (s *Depth2FO) Prove(g *graph.Graph) (cert.Assignment, error) {
	holds, err := s.Holds(g)
	if err != nil {
		return nil, err
	}
	if !holds {
		return nil, fmt.Errorf("core: %s: property does not hold", s.Name())
	}
	key := classify(g)
	root := 0
	if key&1 != 0 { // dominating vertex exists: root the count tree there
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) == g.N()-1 {
				root = v
				break
			}
		}
	}
	labels, err := spanning.LabelsFor(g, root)
	if err != nil {
		return nil, err
	}
	var witnessLabels []spanning.Label
	if key&2 == 0 { // not a clique: point a tree at a non-universal vertex
		witness := -1
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) < g.N()-1 {
				witness = v
				break
			}
		}
		if witness == -1 {
			return nil, fmt.Errorf("core: %s: classification claims non-clique but all degrees are n-1", s.Name())
		}
		witnessLabels, err = spanning.LabelsFor(g, witness)
		if err != nil {
			return nil, err
		}
	}
	a := make(cert.Assignment, g.N())
	for v := 0; v < g.N(); v++ {
		var w bitio.Writer
		w.WriteUint(uint64(key), 3)
		w.WriteUvarint(uint64(g.N()))
		labels[v].Encode(&w)
		if witnessLabels != nil {
			witnessLabels[v].Encode(&w)
		}
		a[v] = w.Clone()
	}
	return a, nil
}

// depth2Cert is one decoded Depth2FO certificate.
type depth2Cert struct {
	key     uint8
	n       uint64
	count   spanning.Label
	witness *spanning.Label
}

func decodeDepth2(c cert.Certificate) (depth2Cert, bool) {
	r := bitio.NewReader(c)
	key, err := r.ReadUint(3)
	if err != nil {
		return depth2Cert{}, false
	}
	n, err := r.ReadUvarint()
	if err != nil || n == 0 {
		return depth2Cert{}, false
	}
	out := depth2Cert{key: uint8(key), n: n}
	out.count, err = spanning.Decode(r)
	if err != nil {
		return depth2Cert{}, false
	}
	if out.key&2 == 0 {
		l, err := spanning.Decode(r)
		if err != nil {
			return depth2Cert{}, false
		}
		out.witness = &l
	}
	if r.Remaining() != 0 {
		return depth2Cert{}, false
	}
	return out, true
}

// Verify implements cert.Scheme: the claimed triple must make the
// sentence true, n is certified by the count tree, and each base claim is
// checked by the vertices that can refute it (degrees against n).
func (s *Depth2FO) Verify(v cert.View) bool {
	own, ok := decodeDepth2(v.Cert)
	if !ok || !s.verdicts[own.key] {
		return false
	}
	countNbs := make([]spanning.NeighborLabel, len(v.Neighbors))
	var witnessNbs []spanning.NeighborLabel
	for i, nb := range v.Neighbors {
		nd, ok := decodeDepth2(nb.Cert)
		if !ok || nd.key != own.key || nd.n != own.n {
			return false
		}
		countNbs[i] = spanning.NeighborLabel{ID: nb.ID, Label: nd.count}
		if own.witness != nil {
			if nd.witness == nil {
				return false
			}
			witnessNbs = append(witnessNbs, spanning.NeighborLabel{ID: nb.ID, Label: *nd.witness})
		}
	}
	// Count tree: structure, counts, and n at the root.
	if !spanning.CheckStructure(v.ID, own.count, countNbs) ||
		!spanning.CheckCounts(v.ID, own.count, countNbs) {
		return false
	}
	if v.ID == own.count.Root && own.count.Count != own.n {
		return false
	}
	n := int(own.n)
	p1 := own.key&4 != 0
	p2 := own.key&2 != 0
	p3 := own.key&1 != 0
	// P1 is refutable by every vertex once n is certified.
	if p1 != (n == 1) {
		return false
	}
	// P2 true: every vertex must be universal. P2 false: the witness tree
	// must be structurally valid and its root non-universal.
	if p2 && v.Degree() != n-1 {
		return false
	}
	if !p2 {
		if own.witness == nil || !spanning.CheckStructure(v.ID, *own.witness, witnessNbs) {
			return false
		}
		if v.ID == own.witness.Root && v.Degree() >= n-1 {
			return false
		}
	}
	// P3 true: the count-tree root is the dominating vertex. P3 false:
	// nobody may be universal.
	if p3 && v.ID == own.count.Root && v.Degree() != n-1 {
		return false
	}
	if !p3 && v.Degree() >= n-1 && n > 1 {
		return false
	}
	return true
}
