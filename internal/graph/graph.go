// Package graph implements the undirected-graph substrate that every
// certification scheme in this module runs on.
//
// Following the paper (§3), all graphs handled by schemes are connected,
// loopless and non-empty; vertices carry unique identifiers from a
// polynomial range. The package also provides the structural algorithms the
// schemes depend on: traversals, connectivity, articulation points,
// biconnected components, and simple path/cycle length computations.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// ID is a vertex identifier. The paper assumes unique IDs in [1, n^k]; we
// keep them as int64 and account for their width explicitly when encoding.
type ID = int64

// Graph is an undirected, loopless graph over vertices indexed 0..N-1.
// Each vertex has an application-visible identifier; indices are an
// internal, contiguous handle.
//
// The zero value is an empty graph; use New or NewWithIDs to create one.
// Graphs must not be copied by value after first use (they cache an
// atomically published CSR snapshot).
type Graph struct {
	ids []ID
	adj [][]int
	// byID maps identifier to index; nil when identifiers are the default
	// 1..n (the common case for generated graphs), where the mapping is
	// arithmetic and the map would cost n entries for nothing.
	byID  map[ID]int
	m     int // number of edges
	maxID ID  // largest identifier, fixed at construction
	// csr caches the immutable CSR snapshot of the current revision;
	// AddEdge invalidates it. Atomic so concurrent readers of a quiescent
	// graph (server handlers, netsim shards) share one snapshot safely.
	csr atomic.Pointer[CSR]
}

// New creates a graph with n vertices and default identifiers 1..n.
func New(n int) *Graph {
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(i + 1)
	}
	return &Graph{
		ids:   ids,
		adj:   make([][]int, n),
		maxID: ID(n),
	}
}

// NewWithIDs creates a graph whose i-th vertex has identifier ids[i].
// It returns an error if identifiers are not unique or not positive.
func NewWithIDs(ids []ID) (*Graph, error) {
	own := make([]ID, len(ids))
	copy(own, ids)
	g := &Graph{
		ids: own,
		adj: make([][]int, len(ids)),
	}
	if defaultIDs(own) {
		g.maxID = ID(len(own))
		return g, nil
	}
	byID := make(map[ID]int, len(ids))
	for i, id := range ids {
		if id <= 0 {
			return nil, fmt.Errorf("graph: identifier %d at index %d is not positive", id, i)
		}
		if j, dup := byID[id]; dup {
			return nil, fmt.Errorf("graph: duplicate identifier %d at indices %d and %d", id, j, i)
		}
		byID[id] = i
		if id > g.maxID {
			g.maxID = id
		}
	}
	g.byID = byID
	return g, nil
}

// defaultIDs reports whether ids is exactly the default sequence 1..n,
// for which the identifier-to-index map can be elided.
func defaultIDs(ids []ID) bool {
	for i, id := range ids {
		if id != ID(i+1) {
			return false
		}
	}
	return true
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.ids) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// IDOf returns the identifier of vertex index v.
func (g *Graph) IDOf(v int) ID { return g.ids[v] }

// IndexOf returns the index of the vertex with the given identifier and
// whether it exists.
func (g *Graph) IndexOf(id ID) (int, bool) {
	if g.byID == nil {
		if id >= 1 && id <= ID(len(g.ids)) {
			return int(id - 1), true
		}
		return 0, false
	}
	v, ok := g.byID[id]
	return v, ok
}

// MaxID returns the largest identifier in the graph (0 for an empty
// graph). It is a stored field — the value sits on the cert-encoding hot
// path for ID-width accounting, so it must not rescan the vertex list.
func (g *Graph) MaxID() ID { return g.maxID }

// CSR returns the immutable CSR snapshot of the graph's current
// revision, building and caching it on first use. Mutating the graph
// (AddEdge) invalidates the cache; snapshots already handed out stay
// valid for the revision they captured. Safe for concurrent use on a
// quiescent graph.
func (g *Graph) CSR() *CSR {
	if c := g.csr.Load(); c != nil {
		return c
	}
	c := buildCSR(g.adj, g.m)
	// A racing builder may publish first; both snapshots are identical,
	// so either may win.
	g.csr.CompareAndSwap(nil, c)
	return g.csr.Load()
}

// AddEdge inserts the undirected edge {u, v} given by vertex indices.
// Self-loops and duplicate edges are rejected with an error, keeping the
// graph simple as the paper requires.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.ids) || v < 0 || v >= len(g.ids) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.ids))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d rejected", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m++
	g.csr.Store(nil) // invalidate the snapshot of the previous revision
	return nil
}

// MustAddEdge is AddEdge for construction code where the edge is known to
// be valid (generators, tests); it panics on error.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge. When a CSR snapshot is
// cached the test is a binary search over the shorter sorted row;
// otherwise it scans the shorter adjacency list (construction-time
// callers, where no snapshot exists yet).
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.ids) || v < 0 || v >= len(g.ids) {
		return false
	}
	if c := g.csr.Load(); c != nil {
		return c.HasEdge(u, v)
	}
	// Scan the shorter adjacency list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum vertex degree (0 for edgeless graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Edges returns all edges as index pairs with u < v, sorted. The CSR
// snapshot's sorted rows make this a single ordered sweep, no sort pass.
func (g *Graph) Edges() [][2]int {
	c := g.CSR()
	out := make([][2]int, 0, g.m)
	for u := 0; u < c.N(); u++ {
		for _, v := range c.Row(u) {
			if int(v) > u {
				out = append(out, [2]int{u, int(v)})
			}
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c, err := NewWithIDs(g.ids)
	if err != nil {
		panic(err) // unreachable: ids were already validated
	}
	for u := range g.adj {
		c.adj[u] = append([]int(nil), g.adj[u]...)
	}
	c.m = g.m
	return c
}

// String returns a compact human-readable description, useful in test
// failure messages.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{n=%d, m=%d, edges=%v}", g.N(), g.M(), g.Edges())
}

// BFSFrom runs a breadth-first search from src and returns the distance
// (in edges) to every vertex, with -1 for unreachable vertices.
func (g *Graph) BFSFrom(src int) []int {
	return g.CSR().BFSFrom(src)
}

// bfsFromRef is the retained slice-adjacency reference for BFSFrom; the
// differential test pins the CSR traversal byte-identical to it.
func (g *Graph) bfsFromRef(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected. The empty graph is not
// connected (the paper considers non-empty graphs only).
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return false
	}
	dist := g.BFSFrom(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components as lists of vertex indices,
// each sorted, ordered by smallest contained index.
func (g *Graph) Components() [][]int {
	return g.CSR().Components()
}

// componentsRef is the retained slice-adjacency reference for Components.
func (g *Graph) componentsRef() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// InducedSubgraph returns the subgraph induced by the given vertex indices
// (which keep their identifiers), together with the mapping from new index
// to old index.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int) {
	keep := append([]int(nil), vertices...)
	sort.Ints(keep)
	oldToNew := make(map[int]int, len(keep))
	ids := make([]ID, len(keep))
	for newIdx, oldIdx := range keep {
		oldToNew[oldIdx] = newIdx
		ids[newIdx] = g.ids[oldIdx]
	}
	sub, err := NewWithIDs(ids)
	if err != nil {
		panic(err) // unreachable: subset of already-unique IDs
	}
	for _, u := range keep {
		for _, v := range g.adj[u] {
			if u < v {
				if nv, ok := oldToNew[v]; ok {
					sub.MustAddEdge(oldToNew[u], nv)
				}
			}
		}
	}
	return sub, keep
}

// RemoveVertex returns a copy of the graph with vertex v removed, together
// with the mapping from new index to old index.
func (g *Graph) RemoveVertex(v int) (*Graph, []int) {
	keep := make([]int, 0, g.N()-1)
	for u := 0; u < g.N(); u++ {
		if u != v {
			keep = append(keep, u)
		}
	}
	return g.InducedSubgraph(keep)
}

// Eccentricity returns the maximum distance from v to any vertex, or -1 if
// some vertex is unreachable.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFSFrom(v)
	ecc := 0
	for _, d := range dist {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum eccentricity, or -1 if the graph is
// disconnected or empty.
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		e := g.Eccentricity(v)
		if e == -1 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// IsTree reports whether the graph is a tree (connected and m = n-1).
func (g *Graph) IsTree() bool {
	return g.Connected() && g.m == g.N()-1
}

// AdjacencyMatrix returns the n x n boolean adjacency matrix.
func (g *Graph) AdjacencyMatrix() [][]bool {
	n := g.N()
	mat := make([][]bool, n)
	for i := range mat {
		mat[i] = make([]bool, n)
	}
	for u := range g.adj {
		for _, v := range g.adj[u] {
			mat[u][v] = true
		}
	}
	return mat
}
