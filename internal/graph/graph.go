// Package graph implements the undirected-graph substrate that every
// certification scheme in this module runs on.
//
// Following the paper (§3), all graphs handled by schemes are connected,
// loopless and non-empty; vertices carry unique identifiers from a
// polynomial range. The package also provides the structural algorithms the
// schemes depend on: traversals, connectivity, articulation points,
// biconnected components, and simple path/cycle length computations.
package graph

import (
	"fmt"
	"sort"
)

// ID is a vertex identifier. The paper assumes unique IDs in [1, n^k]; we
// keep them as int64 and account for their width explicitly when encoding.
type ID = int64

// Graph is an undirected, loopless graph over vertices indexed 0..N-1.
// Each vertex has an application-visible identifier; indices are an
// internal, contiguous handle.
//
// The zero value is an empty graph; use New or NewWithIDs to create one.
type Graph struct {
	ids  []ID
	adj  [][]int
	byID map[ID]int
	m    int // number of edges
}

// New creates a graph with n vertices and default identifiers 1..n.
func New(n int) *Graph {
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(i + 1)
	}
	g, err := NewWithIDs(ids)
	if err != nil {
		// Unreachable: default IDs are unique.
		panic(err)
	}
	return g
}

// NewWithIDs creates a graph whose i-th vertex has identifier ids[i].
// It returns an error if identifiers are not unique or not positive.
func NewWithIDs(ids []ID) (*Graph, error) {
	byID := make(map[ID]int, len(ids))
	for i, id := range ids {
		if id <= 0 {
			return nil, fmt.Errorf("graph: identifier %d at index %d is not positive", id, i)
		}
		if j, dup := byID[id]; dup {
			return nil, fmt.Errorf("graph: duplicate identifier %d at indices %d and %d", id, j, i)
		}
		byID[id] = i
	}
	own := make([]ID, len(ids))
	copy(own, ids)
	return &Graph{
		ids:  own,
		adj:  make([][]int, len(ids)),
		byID: byID,
	}, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.ids) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// IDOf returns the identifier of vertex index v.
func (g *Graph) IDOf(v int) ID { return g.ids[v] }

// IndexOf returns the index of the vertex with the given identifier and
// whether it exists.
func (g *Graph) IndexOf(id ID) (int, bool) {
	v, ok := g.byID[id]
	return v, ok
}

// MaxID returns the largest identifier in the graph (0 for an empty graph).
func (g *Graph) MaxID() ID {
	var max ID
	for _, id := range g.ids {
		if id > max {
			max = id
		}
	}
	return max
}

// AddEdge inserts the undirected edge {u, v} given by vertex indices.
// Self-loops and duplicate edges are rejected with an error, keeping the
// graph simple as the paper requires.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.ids) || v < 0 || v >= len(g.ids) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.ids))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d rejected", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m++
	return nil
}

// MustAddEdge is AddEdge for construction code where the edge is known to
// be valid (generators, tests); it panics on error.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.ids) || v < 0 || v >= len(g.ids) {
		return false
	}
	// Scan the shorter adjacency list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum vertex degree (0 for edgeless graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Edges returns all edges as index pairs with u < v, sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c, err := NewWithIDs(g.ids)
	if err != nil {
		panic(err) // unreachable: ids were already validated
	}
	for u := range g.adj {
		c.adj[u] = append([]int(nil), g.adj[u]...)
	}
	c.m = g.m
	return c
}

// String returns a compact human-readable description, useful in test
// failure messages.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{n=%d, m=%d, edges=%v}", g.N(), g.M(), g.Edges())
}

// BFSFrom runs a breadth-first search from src and returns the distance
// (in edges) to every vertex, with -1 for unreachable vertices.
func (g *Graph) BFSFrom(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected. The empty graph is not
// connected (the paper considers non-empty graphs only).
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return false
	}
	dist := g.BFSFrom(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components as lists of vertex indices,
// each sorted, ordered by smallest contained index.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// InducedSubgraph returns the subgraph induced by the given vertex indices
// (which keep their identifiers), together with the mapping from new index
// to old index.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int) {
	keep := append([]int(nil), vertices...)
	sort.Ints(keep)
	oldToNew := make(map[int]int, len(keep))
	ids := make([]ID, len(keep))
	for newIdx, oldIdx := range keep {
		oldToNew[oldIdx] = newIdx
		ids[newIdx] = g.ids[oldIdx]
	}
	sub, err := NewWithIDs(ids)
	if err != nil {
		panic(err) // unreachable: subset of already-unique IDs
	}
	for _, u := range keep {
		for _, v := range g.adj[u] {
			if u < v {
				if nv, ok := oldToNew[v]; ok {
					sub.MustAddEdge(oldToNew[u], nv)
				}
			}
		}
	}
	return sub, keep
}

// RemoveVertex returns a copy of the graph with vertex v removed, together
// with the mapping from new index to old index.
func (g *Graph) RemoveVertex(v int) (*Graph, []int) {
	keep := make([]int, 0, g.N()-1)
	for u := 0; u < g.N(); u++ {
		if u != v {
			keep = append(keep, u)
		}
	}
	return g.InducedSubgraph(keep)
}

// Eccentricity returns the maximum distance from v to any vertex, or -1 if
// some vertex is unreachable.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFSFrom(v)
	ecc := 0
	for _, d := range dist {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum eccentricity, or -1 if the graph is
// disconnected or empty.
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		e := g.Eccentricity(v)
		if e == -1 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// IsTree reports whether the graph is a tree (connected and m = n-1).
func (g *Graph) IsTree() bool {
	return g.Connected() && g.m == g.N()-1
}

// AdjacencyMatrix returns the n x n boolean adjacency matrix.
func (g *Graph) AdjacencyMatrix() [][]bool {
	n := g.N()
	mat := make([][]bool, n)
	for i := range mat {
		mat[i] = make([]bool, n)
	}
	for u := range g.adj {
		for _, v := range g.adj[u] {
			mat[u][v] = true
		}
	}
	return mat
}
