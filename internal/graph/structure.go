package graph

import "sort"

// ArticulationPoints returns the set of cut vertices of the graph as a
// sorted list of vertex indices, using Tarjan's low-link algorithm
// (iteratively, to stay safe on deep graphs) over the CSR snapshot.
func (g *Graph) ArticulationPoints() []int {
	c := g.CSR()
	n := c.N()
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	isCut := make([]bool, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0

	type frame struct {
		v, childIdx, rootChildren int
	}
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		stack := []frame{{v: s}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			row := c.Row(v)
			if f.childIdx < len(row) {
				w := int(row[f.childIdx])
				f.childIdx++
				if w == parent[v] {
					continue
				}
				if disc[w] != -1 {
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
					continue
				}
				parent[w] = v
				if v == s {
					f.rootChildren++
				}
				disc[w] = timer
				low[w] = timer
				timer++
				stack = append(stack, frame{v: w})
				continue
			}
			// Post-order: propagate low-link to parent.
			stack = stack[:len(stack)-1]
			if p := parent[v]; p != -1 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if p != s && low[v] >= disc[p] {
					isCut[p] = true
				}
			}
		}
		// Root rule: the DFS root is a cut vertex iff it has >= 2 DFS children.
		rootChildren := 0
		for _, w := range c.Row(s) {
			if parent[w] == s {
				rootChildren++
			}
		}
		if rootChildren >= 2 {
			isCut[s] = true
		}
	}

	var out []int
	for v, cut := range isCut {
		if cut {
			out = append(out, v)
		}
	}
	return out
}

// articulationPointsRef is the retained slice-adjacency reference the
// differential test pins the CSR version against.
func (g *Graph) articulationPointsRef() []int {
	n := g.N()
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	isCut := make([]bool, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0

	type frame struct {
		v, childIdx, rootChildren int
	}
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		stack := []frame{{v: s}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			if f.childIdx < len(g.adj[v]) {
				w := g.adj[v][f.childIdx]
				f.childIdx++
				if w == parent[v] {
					continue
				}
				if disc[w] != -1 {
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
					continue
				}
				parent[w] = v
				if v == s {
					f.rootChildren++
				}
				disc[w] = timer
				low[w] = timer
				timer++
				stack = append(stack, frame{v: w})
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[v]; p != -1 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if p != s && low[v] >= disc[p] {
					isCut[p] = true
				}
			}
		}
		rootChildren := 0
		for _, w := range g.adj[s] {
			if parent[w] == s {
				rootChildren++
			}
		}
		if rootChildren >= 2 {
			isCut[s] = true
		}
	}

	var out []int
	for v, cut := range isCut {
		if cut {
			out = append(out, v)
		}
	}
	return out
}

// BiconnectedComponents returns the 2-connected components (blocks) of the
// graph as vertex-index sets. Bridges form blocks of size 2. Every edge
// belongs to exactly one block; cut vertices belong to several. The CSR
// rewrite replaces the per-block membership map of the reference with an
// epoch-stamped mark array, so popping a block allocates only its output.
func (g *Graph) BiconnectedComponents() [][]int {
	c := g.CSR()
	n := c.N()
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	stamp := make([]int, n) // stamp[v] == epoch: v already in the block being popped
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
		stamp[i] = -1
	}
	timer := 0
	epoch := 0
	var edgeStack [][2]int
	var blocks [][]int

	popBlock := func(u, w int) {
		var block []int
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			if stamp[e[0]] != epoch {
				stamp[e[0]] = epoch
				block = append(block, e[0])
			}
			if stamp[e[1]] != epoch {
				stamp[e[1]] = epoch
				block = append(block, e[1])
			}
			if e[0] == u && e[1] == w || e[0] == w && e[1] == u {
				break
			}
		}
		sort.Ints(block)
		blocks = append(blocks, block)
		epoch++
	}

	type frame struct {
		v, childIdx int
	}
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		stack := []frame{{v: s}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			row := c.Row(v)
			if f.childIdx < len(row) {
				w := int(row[f.childIdx])
				f.childIdx++
				if w == parent[v] {
					continue
				}
				if disc[w] != -1 {
					if disc[w] < disc[v] { // back edge
						edgeStack = append(edgeStack, [2]int{v, w})
						if disc[w] < low[v] {
							low[v] = disc[w]
						}
					}
					continue
				}
				parent[w] = v
				edgeStack = append(edgeStack, [2]int{v, w})
				disc[w] = timer
				low[w] = timer
				timer++
				stack = append(stack, frame{v: w})
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[v]; p != -1 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] >= disc[p] {
					popBlock(p, v)
				}
			}
		}
	}
	return blocks
}

// biconnectedComponentsRef is the retained slice-adjacency reference the
// differential test pins the CSR version against.
func (g *Graph) biconnectedComponentsRef() [][]int {
	n := g.N()
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0
	var edgeStack [][2]int
	var blocks [][]int

	popBlock := func(u, w int) {
		seen := map[int]bool{}
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			seen[e[0]] = true
			seen[e[1]] = true
			if e[0] == u && e[1] == w || e[0] == w && e[1] == u {
				break
			}
		}
		block := make([]int, 0, len(seen))
		for v := range seen {
			block = append(block, v)
		}
		sort.Ints(block)
		blocks = append(blocks, block)
	}

	type frame struct {
		v, childIdx int
	}
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		stack := []frame{{v: s}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			if f.childIdx < len(g.adj[v]) {
				w := g.adj[v][f.childIdx]
				f.childIdx++
				if w == parent[v] {
					continue
				}
				if disc[w] != -1 {
					if disc[w] < disc[v] { // back edge
						edgeStack = append(edgeStack, [2]int{v, w})
						if disc[w] < low[v] {
							low[v] = disc[w]
						}
					}
					continue
				}
				parent[w] = v
				edgeStack = append(edgeStack, [2]int{v, w})
				disc[w] = timer
				low[w] = timer
				timer++
				stack = append(stack, frame{v: w})
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[v]; p != -1 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] >= disc[p] {
					popBlock(p, v)
				}
			}
		}
	}
	return blocks
}

// LongestPathVertices returns the number of vertices on a longest simple
// path. It is exact and exponential in the worst case, intended for the
// small graphs used in minor experiments (P_t-minor-freeness: a graph has a
// P_t minor iff it contains a path on t vertices).
//
// A DFS over (current vertex, visited set) with memoization on small graphs
// (n <= 63) keeps this usable up to a few tens of vertices.
func (g *Graph) LongestPathVertices() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	if n > 63 {
		// Fall back to a bounded DFS without memoization; still exact but
		// practical only on sparse graphs (trees, near-trees).
		best := 0
		visited := make([]bool, n)
		var dfs func(v, length int)
		dfs = func(v, length int) {
			if length > best {
				best = length
			}
			for _, w := range g.adj[v] {
				if !visited[w] {
					visited[w] = true
					dfs(w, length+1)
					visited[w] = false
				}
			}
		}
		for s := 0; s < n; s++ {
			visited[s] = true
			dfs(s, 1)
			visited[s] = false
		}
		return best
	}
	best := 0
	type key struct {
		v    int
		mask uint64
	}
	memo := map[key]int{}
	var dfs func(v int, mask uint64) int
	dfs = func(v int, mask uint64) int {
		k := key{v, mask}
		if r, ok := memo[k]; ok {
			return r
		}
		res := 1
		for _, w := range g.adj[v] {
			if mask&(1<<uint(w)) == 0 {
				if r := 1 + dfs(w, mask|1<<uint(w)); r > res {
					res = r
				}
			}
		}
		memo[k] = res
		return res
	}
	for s := 0; s < n; s++ {
		if r := dfs(s, 1<<uint(s)); r > best {
			best = r
		}
	}
	return best
}

// LongestCycleVertices returns the number of vertices on a longest simple
// cycle, or 0 if the graph is acyclic. Like LongestPathVertices it is exact
// and intended for small graphs (C_t-minor-freeness: a graph has a C_t
// minor iff it contains a cycle of length >= t).
func (g *Graph) LongestCycleVertices() int {
	n := g.N()
	best := 0
	visited := make([]bool, n)
	var dfs func(start, v, length int)
	dfs = func(start, v, length int) {
		for _, w := range g.adj[v] {
			if w == start && length >= 3 {
				if length > best {
					best = length
				}
				continue
			}
			// Only extend to vertices larger than start to canonicalize the
			// cycle's smallest vertex and prune the search.
			if w > start && !visited[w] {
				visited[w] = true
				dfs(start, w, length+1)
				visited[w] = false
			}
		}
	}
	for s := 0; s < n; s++ {
		visited[s] = true
		dfs(s, s, 1)
		visited[s] = false
	}
	return best
}

// Girth returns the length of a shortest cycle, or 0 if the graph is
// acyclic. BFS from every vertex; O(n*m).
func (g *Graph) Girth() int {
	best := 0
	n := g.N()
	dist := make([]int, n)
	par := make([]int, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
			par[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					par[v] = u
					queue = append(queue, v)
				} else if par[u] != v && par[v] != u {
					c := dist[u] + dist[v] + 1
					if best == 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}
