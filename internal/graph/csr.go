package graph

import (
	"slices"
	"sort"
)

// CSR is an immutable compressed-sparse-row snapshot of a graph: one
// offsets array of n+1 entries and one neighbors array of 2m entries,
// rows sorted ascending. It is the zero-copy shared view of the graph
// that the prover, verifier, netsim shards, the EMSO DP and the
// decomposition heuristics all iterate — none of them re-walk the
// mutable [][]int adjacency or copy it into private structures.
//
// A CSR is built once per graph revision (see Graph.CSR) and never
// mutated afterwards, so it may be read from any number of goroutines
// without synchronization.
type CSR struct {
	offsets   []int64
	neighbors []int32
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.offsets) - 1 }

// M returns the number of edges.
func (c *CSR) M() int { return len(c.neighbors) / 2 }

// Row returns the sorted neighbor row of vertex v. The slice aliases the
// snapshot's storage and must not be modified.
//
//certlint:hotpath
func (c *CSR) Row(v int) []int32 {
	return c.neighbors[c.offsets[v]:c.offsets[v+1]]
}

// Degree returns the degree of v.
func (c *CSR) Degree(v int) int {
	return int(c.offsets[v+1] - c.offsets[v])
}

// HasEdge reports whether {u, v} is an edge: a linear sweep of the
// shorter sorted row when it is short (bounded-treewidth rows mostly
// are, and at that length the sweep beats the binary search's branch
// misses), binary search otherwise.
//
//certlint:hotpath
func (c *CSR) HasEdge(u, v int) bool {
	n := c.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return false
	}
	if c.Degree(u) > c.Degree(v) {
		u, v = v, u
	}
	row := c.Row(u)
	w := int32(v)
	if len(row) <= 16 {
		for _, x := range row {
			if x >= w {
				return x == w
			}
		}
		return false
	}
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == w
}

// buildCSR assembles the snapshot from slice adjacency, sorting each row.
func buildCSR(adj [][]int, m int) *CSR {
	n := len(adj)
	c := &CSR{
		offsets:   make([]int64, n+1),
		neighbors: make([]int32, 0, 2*m),
	}
	for v := 0; v < n; v++ {
		row := adj[v]
		start := len(c.neighbors)
		for _, w := range row {
			c.neighbors = append(c.neighbors, int32(w))
		}
		if !slices.IsSorted(c.neighbors[start:]) {
			slices.Sort(c.neighbors[start:])
		}
		c.offsets[v+1] = int64(len(c.neighbors))
	}
	return c
}

// BFSFrom runs a breadth-first search over the snapshot from src and
// returns the distance (in edges) to every vertex, -1 where unreachable.
// It is the allocation pattern of Graph.BFSFrom on the immutable rows.
//
//certlint:hotpath
func (c *CSR) BFSFrom(src int) []int {
	n := c.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u] + 1
		for _, w := range c.Row(u) {
			if dist[w] == -1 {
				dist[w] = du
				queue = append(queue, int(w))
			}
		}
	}
	return dist
}

// Components returns the connected components as sorted vertex-index
// lists, ordered by smallest contained index — the same contract as
// Graph.Components, computed over the snapshot rows.
func (c *CSR) Components() [][]int {
	n := c.N()
	seen := make([]bool, n)
	var comps [][]int
	stack := make([]int, 0, 64)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack = append(stack[:0], s)
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, w := range c.Row(u) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, int(w))
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}
