package graph

import (
	"fmt"
	"slices"
)

// Builder accumulates edges for bulk graph construction in O(n+m): edges
// land in two flat endpoint arrays, and Finish distributes them into
// adjacency with a counting sort — no per-edge duplicate scans, no
// per-vertex maps, no incremental append growth. Generators building
// million-vertex graphs go through a Builder; incremental construction
// keeps using Graph.AddEdge.
type Builder struct {
	g      *Graph
	us, vs []int32
}

// NewBuilder starts a builder for a graph with n vertices and default
// identifiers 1..n.
func NewBuilder(n int) *Builder {
	return &Builder{g: New(n)}
}

// NewBuilderWithIDs starts a builder whose i-th vertex has identifier
// ids[i], under the same validity rules as NewWithIDs.
func NewBuilderWithIDs(ids []ID) (*Builder, error) {
	g, err := NewWithIDs(ids)
	if err != nil {
		return nil, err
	}
	return &Builder{g: g}, nil
}

// Grow reserves capacity for m additional edges, so bulk loaders that
// know the edge count up front avoid incremental append growth.
func (b *Builder) Grow(m int) {
	b.us = slices.Grow(b.us, m)
	b.vs = slices.Grow(b.vs, m)
}

// AddEdge records the undirected edge {u, v}. Range and self-loop errors
// surface immediately; duplicate edges are detected at Finish, where the
// sorted rows make the check free.
func (b *Builder) AddEdge(u, v int) error {
	n := b.g.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d rejected", u)
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	return nil
}

// MustAddEdge is AddEdge for construction code where the edge is known
// to be valid; it panics on error.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Finish assembles the graph and returns it. Each adjacency row is a
// full-capacity sub-slice of one flat backing array (a later AddEdge on
// the finished graph reallocates its row rather than clobbering a
// neighbour's), rows come out sorted, and the CSR snapshot is published
// as a by-product. The builder must not be reused after Finish.
func (b *Builder) Finish() (*Graph, error) {
	g := b.g
	n := g.N()
	m := len(b.us)
	deg := make([]int64, n+1)
	for i := 0; i < m; i++ {
		deg[b.us[i]+1]++
		deg[b.vs[i]+1]++
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v+1]
	}
	cursor := append([]int64(nil), offsets...)
	neighbors := make([]int32, 2*m)
	for i := 0; i < m; i++ {
		u, v := b.us[i], b.vs[i]
		neighbors[cursor[u]] = v
		cursor[u]++
		neighbors[cursor[v]] = u
		cursor[v]++
	}
	// Sort each row and check for duplicates; build the []int adjacency
	// over one flat backing array while we are at it.
	flat := make([]int, 2*m)
	for v := 0; v < n; v++ {
		row := neighbors[offsets[v]:offsets[v+1]]
		slices.Sort(row)
		for i := 1; i < len(row); i++ {
			if row[i] == row[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", v, row[i])
			}
		}
		lo, hi := offsets[v], offsets[v+1]
		dst := flat[lo:hi:hi]
		for i, w := range row {
			dst[i] = int(w)
		}
		g.adj[v] = dst
	}
	g.m = m
	g.csr.Store(&CSR{offsets: offsets, neighbors: neighbors})
	return g, nil
}
