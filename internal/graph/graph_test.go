package graph

import (
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	if n >= 3 {
		g.MustAddEdge(n-1, 0)
	}
	return g
}

func clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

func TestNewAssignsDefaultIDs(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		if g.IDOf(i) != ID(i+1) {
			t.Errorf("IDOf(%d) = %d, want %d", i, g.IDOf(i), i+1)
		}
		if idx, ok := g.IndexOf(ID(i + 1)); !ok || idx != i {
			t.Errorf("IndexOf(%d) = (%d,%v)", i+1, idx, ok)
		}
	}
	if g.MaxID() != 3 {
		t.Errorf("MaxID = %d", g.MaxID())
	}
}

func TestNewWithIDsRejectsDuplicates(t *testing.T) {
	if _, err := NewWithIDs([]ID{1, 2, 1}); err == nil {
		t.Fatal("expected error for duplicate IDs")
	}
	if _, err := NewWithIDs([]ID{0, 1}); err == nil {
		t.Fatal("expected error for non-positive ID")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func TestHasEdgeSymmetric(t *testing.T) {
	g := path(4)
	for _, e := range g.Edges() {
		if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
			t.Errorf("edge %v not symmetric", e)
		}
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge (0,2)")
	}
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := path(5)
	dist := g.BFSFrom(0)
	for i, d := range dist {
		if d != i {
			t.Errorf("dist[%d] = %d, want %d", i, d, i)
		}
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 2 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Errorf("component sizes wrong: %v", comps)
	}
	if New(0).Connected() {
		t.Error("empty graph reported connected")
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{path(1), 0},
		{path(2), 1},
		{path(7), 6},
		{cycle(6), 3},
		{clique(5), 1},
	}
	for i, c := range cases {
		if got := c.g.Diameter(); got != c.want {
			t.Errorf("case %d: Diameter = %d, want %d", i, got, c.want)
		}
	}
}

func TestIsTree(t *testing.T) {
	if !path(6).IsTree() {
		t.Error("path not recognized as tree")
	}
	if cycle(6).IsTree() {
		t.Error("cycle recognized as tree")
	}
	g := New(4)
	g.MustAddEdge(0, 1)
	if g.IsTree() {
		t.Error("forest recognized as tree")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycle(5)
	sub, mapping := g.InducedSubgraph([]int{0, 1, 2})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("subgraph n=%d m=%d, want 3,2", sub.N(), sub.M())
	}
	for newIdx, oldIdx := range mapping {
		if sub.IDOf(newIdx) != g.IDOf(oldIdx) {
			t.Errorf("ID mismatch at %d", newIdx)
		}
	}
}

func TestRemoveVertex(t *testing.T) {
	g := cycle(4)
	h, _ := g.RemoveVertex(0)
	if h.N() != 3 || h.M() != 2 {
		t.Fatalf("after removal n=%d m=%d, want 3,2", h.N(), h.M())
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := path(3)
	c := g.Clone()
	c.MustAddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Error("clone shares edge storage with original")
	}
}

func TestArticulationPoints(t *testing.T) {
	// Path: all internal vertices are cut vertices.
	g := path(5)
	cuts := g.ArticulationPoints()
	if len(cuts) != 3 {
		t.Fatalf("path cuts = %v, want 3 internal vertices", cuts)
	}
	// Cycle: no cut vertices.
	if cuts := cycle(5).ArticulationPoints(); len(cuts) != 0 {
		t.Errorf("cycle cuts = %v, want none", cuts)
	}
	// Two triangles sharing a vertex: the shared vertex is a cut.
	g = New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 2)
	cuts = g.ArticulationPoints()
	if len(cuts) != 1 || cuts[0] != 2 {
		t.Errorf("bowtie cuts = %v, want [2]", cuts)
	}
}

func TestBiconnectedComponents(t *testing.T) {
	// Bowtie: two triangle blocks.
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 2)
	blocks := g.BiconnectedComponents()
	if len(blocks) != 2 {
		t.Fatalf("bowtie blocks = %v, want 2", blocks)
	}
	for _, b := range blocks {
		if len(b) != 3 {
			t.Errorf("block %v has size %d, want 3", b, len(b))
		}
	}
	// A path on 4 vertices: 3 bridge blocks.
	blocks = path(4).BiconnectedComponents()
	if len(blocks) != 3 {
		t.Errorf("path blocks = %v, want 3 bridges", blocks)
	}
}

func TestLongestPathVertices(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{path(6), 6},
		{cycle(6), 6},
		{clique(4), 4},
		{New(1), 1},
	}
	for i, c := range cases {
		if got := c.g.LongestPathVertices(); got != c.want {
			t.Errorf("case %d: longest path = %d, want %d", i, got, c.want)
		}
	}
	// Star K_{1,4}: longest path has 3 vertices.
	g := New(5)
	for i := 1; i < 5; i++ {
		g.MustAddEdge(0, i)
	}
	if got := g.LongestPathVertices(); got != 3 {
		t.Errorf("star longest path = %d, want 3", got)
	}
}

func TestLongestCycleVertices(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{path(6), 0},
		{cycle(5), 5},
		{clique(5), 5},
	}
	for i, c := range cases {
		if got := c.g.LongestCycleVertices(); got != c.want {
			t.Errorf("case %d: longest cycle = %d, want %d", i, got, c.want)
		}
	}
	// Two triangles sharing a vertex: longest cycle is 3.
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 2)
	if got := g.LongestCycleVertices(); got != 3 {
		t.Errorf("bowtie longest cycle = %d, want 3", got)
	}
}

func TestGirth(t *testing.T) {
	if g := path(5).Girth(); g != 0 {
		t.Errorf("path girth = %d, want 0", g)
	}
	if g := cycle(7).Girth(); g != 7 {
		t.Errorf("C7 girth = %d, want 7", g)
	}
	if g := clique(4).Girth(); g != 3 {
		t.Errorf("K4 girth = %d, want 3", g)
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := clique(4)
	edges := g.Edges()
	if len(edges) != 6 {
		t.Fatalf("K4 edges = %d, want 6", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Errorf("edges not sorted: %v before %v", a, b)
		}
	}
}

func TestAdjacencyMatrixQuick(t *testing.T) {
	// Property: matrix is symmetric with zero diagonal, and agrees with HasEdge.
	f := func(seed uint32) bool {
		n := int(seed%10) + 2
		g := New(n)
		s := seed
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s = s*1664525 + 1013904223
				if s%3 == 0 {
					g.MustAddEdge(i, j)
				}
			}
		}
		mat := g.AdjacencyMatrix()
		for i := 0; i < n; i++ {
			if mat[i][i] {
				return false
			}
			for j := 0; j < n; j++ {
				if mat[i][j] != mat[j][i] || mat[i][j] != g.HasEdge(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaxDegree(t *testing.T) {
	if d := clique(5).MaxDegree(); d != 4 {
		t.Errorf("K5 max degree = %d, want 4", d)
	}
	if d := New(3).MaxDegree(); d != 0 {
		t.Errorf("edgeless max degree = %d, want 0", d)
	}
}
