package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomMutable builds a graph through the mutable AddEdge path with the
// given density, deliberately inserting edges in scrambled order so CSR
// construction has to sort rows.
func randomMutable(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	type e struct{ u, v int }
	var edges []e
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, e{u, v})
			}
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, ed := range edges {
		if rng.Intn(2) == 0 {
			g.MustAddEdge(ed.v, ed.u)
		} else {
			g.MustAddEdge(ed.u, ed.v)
		}
	}
	return g
}

// TestCSRRowsSortedAndComplete: the snapshot holds exactly the adjacency,
// sorted, regardless of insertion order.
func TestCSRRowsSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g := randomMutable(rng, 1+rng.Intn(40), 0.3)
		c := g.CSR()
		if c.N() != g.N() || c.M() != g.M() {
			t.Fatalf("CSR n=%d m=%d, graph n=%d m=%d", c.N(), c.M(), g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			row := c.Row(v)
			if !sort.SliceIsSorted(row, func(i, j int) bool { return row[i] < row[j] }) {
				t.Fatalf("row %d not sorted: %v", v, row)
			}
			want := append([]int(nil), g.Neighbors(v)...)
			sort.Ints(want)
			got := make([]int, len(row))
			for i, w := range row {
				got[i] = int(w)
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("row %d: %v, want %v", v, got, want)
			}
			if c.Degree(v) != g.Degree(v) {
				t.Fatalf("degree %d mismatch", v)
			}
		}
	}
}

// TestCSRHasEdgeMatrix: binary-search HasEdge agrees with the slice scan
// for every pair, and the graph-level HasEdge agrees with both before
// and after the snapshot exists.
func TestCSRHasEdgeMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := randomMutable(rng, 30, 0.25)
	// Before CSR: slice path.
	pre := make(map[[2]int]bool)
	for u := 0; u < 30; u++ {
		for v := 0; v < 30; v++ {
			pre[[2]int{u, v}] = g.HasEdge(u, v)
		}
	}
	c := g.CSR()
	for u := 0; u < 30; u++ {
		for v := 0; v < 30; v++ {
			if got := c.HasEdge(u, v); got != pre[[2]int{u, v}] {
				t.Fatalf("CSR.HasEdge(%d,%d)=%v, slice scan says %v", u, v, got, !got)
			}
			if got := g.HasEdge(u, v); got != pre[[2]int{u, v}] {
				t.Fatalf("Graph.HasEdge(%d,%d) changed after snapshot", u, v)
			}
		}
	}
}

// TestCSRInvalidatedByAddEdge: mutating the graph drops the snapshot and
// the next one reflects the new edge.
func TestCSRInvalidatedByAddEdge(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	c1 := g.CSR()
	if c1.HasEdge(2, 3) {
		t.Fatal("phantom edge")
	}
	g.MustAddEdge(2, 3)
	c2 := g.CSR()
	if c1 == c2 {
		t.Fatal("snapshot not invalidated by AddEdge")
	}
	if !c2.HasEdge(2, 3) || !c2.HasEdge(0, 1) {
		t.Fatal("new snapshot missing edges")
	}
	// The old snapshot stays immutable and self-consistent.
	if c1.M() != 1 || c1.HasEdge(2, 3) {
		t.Fatal("old snapshot mutated")
	}
}

// TestBFSFromMatchesReference pins the CSR BFS against the retained
// slice-adjacency reference across random graphs, including
// disconnected ones.
func TestBFSFromMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		g := randomMutable(rng, 1+rng.Intn(50), []float64{0.02, 0.1, 0.5}[trial%3])
		src := rng.Intn(g.N())
		if got, want := g.BFSFrom(src), g.bfsFromRef(src); !reflect.DeepEqual(got, want) {
			t.Fatalf("BFSFrom(%d) diverges from reference\ngot  %v\nwant %v", src, got, want)
		}
	}
}

// TestComponentsMatchesReference pins CSR component discovery against
// the slice reference.
func TestComponentsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 40; trial++ {
		g := randomMutable(rng, 1+rng.Intn(50), []float64{0.0, 0.03, 0.15}[trial%3])
		if got, want := g.Components(), g.componentsRef(); !reflect.DeepEqual(got, want) {
			t.Fatalf("Components diverges from reference\ngot  %v\nwant %v", got, want)
		}
	}
}

// canonBlocks sorts a block list so two biconnected-component
// enumerations can be compared independently of DFS traversal order.
func canonBlocks(blocks [][]int) [][]int {
	out := make([][]int, len(blocks))
	for i, b := range blocks {
		c := append([]int(nil), b...)
		sort.Ints(c)
		out[i] = c
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// TestStructureMatchesReference pins CSR articulation points and
// biconnected components against the retained slice references. Block
// sets are compared canonically: the CSR DFS visits neighbours in
// sorted order, which may legitimately pop blocks in a different order
// than the insertion-ordered slice DFS.
func TestStructureMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 40; trial++ {
		g := randomMutable(rng, 1+rng.Intn(40), []float64{0.05, 0.1, 0.3}[trial%3])
		if got, want := g.ArticulationPoints(), g.articulationPointsRef(); !reflect.DeepEqual(got, want) {
			t.Fatalf("articulation points diverge\ngot  %v\nwant %v\ngraph %v", got, want, g)
		}
		got := canonBlocks(g.BiconnectedComponents())
		want := canonBlocks(g.biconnectedComponentsRef())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("biconnected components diverge\ngot  %v\nwant %v\ngraph %v", got, want, g)
		}
	}
}

// TestBuilderMatchesMutable: the bulk Builder and the incremental
// AddEdge path produce graphs with identical edge sets, IDs and CSR
// rows.
func TestBuilderMatchesMutable(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		ref := New(n)
		b := NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.2 {
					ref.MustAddEdge(u, v)
					// Feed the builder in arbitrary orientation.
					if rng.Intn(2) == 0 {
						u, v := v, u
						if err := b.AddEdge(u, v); err != nil {
							t.Fatal(err)
						}
					} else if err := b.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		g, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g.Edges(), ref.Edges()) {
			t.Fatalf("edge sets differ")
		}
		if g.M() != ref.M() || g.N() != ref.N() || g.MaxID() != ref.MaxID() {
			t.Fatalf("shape differs: m %d/%d n %d/%d", g.M(), ref.M(), g.N(), ref.N())
		}
		for v := 0; v < n; v++ {
			got := append([]int(nil), g.Neighbors(v)...)
			want := append([]int(nil), ref.Neighbors(v)...)
			sort.Ints(want)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("row %d differs: %v vs %v", v, got, want)
			}
		}
	}
}

// TestBuilderErrors: validation at AddEdge (range, self-loop) and at
// Finish (duplicates, either orientation).
func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := b.AddEdge(-1, 2); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(); err == nil {
		t.Fatal("duplicate edge (reversed orientation) accepted at Finish")
	}
}

// TestBuilderGraphSafeToMutate: a Builder-produced graph uses one flat
// backing array with capacity-capped rows; AddEdge after Finish must
// reallocate, not clobber the next row.
func TestBuilderGraphSafeToMutate(t *testing.T) {
	b := NewBuilder(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int(nil), g.Neighbors(1)...)
	g.MustAddEdge(0, 3) // grows row 0 and row 3
	after := append([]int(nil), g.Neighbors(1)...)
	sort.Ints(before)
	sort.Ints(after)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("appending to row 0 clobbered row 1: %v -> %v", before, after)
	}
	if !g.HasEdge(0, 3) || !g.HasEdge(3, 0) {
		t.Fatal("post-Finish edge missing")
	}
}

// TestBuilderWithIDs: custom IDs round-trip through the builder, and
// default IDs skip the lookup map.
func TestBuilderWithIDs(t *testing.T) {
	b, err := NewBuilderWithIDs([]ID{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxID() != 30 {
		t.Fatalf("MaxID = %d", g.MaxID())
	}
	if i, ok := g.IndexOf(20); !ok || i != 1 {
		t.Fatal("IndexOf wrong for custom IDs")
	}
	if _, ok := g.IndexOf(99); ok {
		t.Fatal("IndexOf found nonexistent ID")
	}
	if _, err := NewBuilderWithIDs([]ID{1, 1}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

// TestMaxIDFixedAtConstruction: MaxID is computed once; it reflects the
// ID set, not edge activity, and IndexOf stays correct on both the
// arithmetic (default) and map (custom) paths.
func TestMaxIDFixedAtConstruction(t *testing.T) {
	g := New(5)
	if g.MaxID() != 5 {
		t.Fatalf("default MaxID = %d, want 5", g.MaxID())
	}
	for v := 0; v < 5; v++ {
		if i, ok := g.IndexOf(ID(v + 1)); !ok || i != v {
			t.Fatalf("IndexOf(%d) != %d", v+1, v)
		}
	}
	for _, id := range []ID{0, 6, -3} {
		if _, ok := g.IndexOf(id); ok {
			t.Fatalf("IndexOf accepted out-of-range default ID %d", id)
		}
	}
	h, err := NewWithIDs([]ID{7, 3, 42})
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxID() != 42 {
		t.Fatalf("custom MaxID = %d, want 42", h.MaxID())
	}
	if i, ok := h.IndexOf(3); !ok || i != 1 {
		t.Fatal("IndexOf wrong on map path")
	}
	if _, ok := h.IndexOf(8); ok {
		t.Fatal("IndexOf found nonexistent custom ID")
	}
}
