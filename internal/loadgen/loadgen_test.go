package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// okMix is a single-target mix posting a fixed body.
func okMix(path string) []Target {
	return []Target{{
		Name:   "t",
		Path:   path,
		Weight: 1,
		Body:   func(*rand.Rand) []byte { return []byte(`{}`) },
	}}
}

func TestOptionsValidate(t *testing.T) {
	base := func() Options {
		return Options{
			BaseURL:  "http://x",
			Rate:     10,
			Duration: time.Second,
			Mix:      okMix("/certify"),
		}
	}
	if o := base(); o.validate() != nil {
		t.Fatalf("valid options rejected: %v", o.validate())
	}
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"no base URL", func(o *Options) { o.BaseURL = "" }},
		{"zero rate", func(o *Options) { o.Rate = 0 }},
		{"negative duration", func(o *Options) { o.Duration = -time.Second }},
		{"negative warmup", func(o *Options) { o.Warmup = -time.Second }},
		{"unknown arrival", func(o *Options) { o.Arrival = "uniform" }},
		{"empty mix", func(o *Options) { o.Mix = nil }},
		{"zero weight", func(o *Options) { o.Mix[0].Weight = 0 }},
		{"nil body", func(o *Options) { o.Mix[0].Body = nil }},
	}
	for _, tc := range cases {
		o := base()
		tc.mutate(&o)
		if err := o.validate(); err == nil {
			t.Errorf("%s: validate accepted bad options", tc.name)
		}
	}
	o := base()
	o.Arrival = ""
	if err := o.validate(); err != nil || o.Arrival != ArrivalConstant {
		t.Fatalf("defaults not applied: arrival=%q err=%v", o.Arrival, err)
	}
	if o.Timeout != 10*time.Second {
		t.Fatalf("default timeout = %v", o.Timeout)
	}
}

// TestRunCountsAndRates drives a fast handler and checks bookkeeping:
// every measured arrival lands in exactly one outcome bucket, warmup
// arrivals stay out of the report, and rates use the measurement window.
func TestRunCountsAndRates(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Options{
		BaseURL:         ts.URL,
		Rate:            200,
		Warmup:          100 * time.Millisecond,
		Duration:        400 * time.Millisecond,
		Mix:             okMix("/certify"),
		SkipServerDelta: true,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if rep.Requests == 0 || rep.OK != rep.Requests || rep.Shed != 0 || rep.Errors != 0 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.WarmupRequests == 0 {
		t.Fatal("no warmup arrivals recorded")
	}
	if got := served.Load(); got != rep.Requests+rep.WarmupRequests {
		t.Fatalf("server saw %d requests, generator fired %d", got, rep.Requests+rep.WarmupRequests)
	}
	// 200/s over 0.4s ≈ 80 measured arrivals; allow generous slack for a
	// loaded CI machine, but the offered rate must be in the ballpark.
	if rep.OfferedRate < 100 || rep.OfferedRate > 300 {
		t.Fatalf("offered rate %.1f implausible for target 200", rep.OfferedRate)
	}
	if rep.AchievedRate != float64(rep.OK)/0.4 {
		t.Fatalf("achieved rate %.1f != ok/window", rep.AchievedRate)
	}
	if len(rep.Endpoints) != 1 || rep.Endpoints[0].Name != "t" {
		t.Fatalf("endpoints: %+v", rep.Endpoints)
	}
	if rep.Latency.P50NS <= 0 || rep.Latency.P99NS < rep.Latency.P50NS {
		t.Fatalf("latency quantiles: %+v", rep.Latency)
	}
	if rep.Server != nil {
		t.Fatal("server delta present despite SkipServerDelta")
	}
}

// TestRunClassifiesOutcomes mixes 200s, 429s (with and without
// Retry-After) and 500s and checks each lands in the right bucket.
func TestRunClassifiesOutcomes(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 4 {
		case 0:
			w.WriteHeader(http.StatusOK)
		case 1:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.WriteHeader(http.StatusTooManyRequests) // contract violation
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Options{
		BaseURL:         ts.URL,
		Rate:            400,
		Duration:        300 * time.Millisecond,
		Mix:             okMix("/certify"),
		SkipServerDelta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.Shed == 0 || rep.Errors == 0 {
		t.Fatalf("expected all outcome kinds: %+v", rep)
	}
	if rep.OK+rep.Shed+rep.Errors != rep.Requests {
		t.Fatalf("outcome buckets don't partition requests: %+v", rep)
	}
	ep := rep.Endpoints[0]
	if ep.RetryAfterMissing == 0 || ep.RetryAfterMissing == ep.Shed {
		t.Fatalf("retry-after accounting: missing=%d shed=%d", ep.RetryAfterMissing, ep.Shed)
	}
	if ep.ShedLatency.P50NS <= 0 {
		t.Fatalf("shed latency not recorded: %+v", ep.ShedLatency)
	}
}

// TestRunCoordinatedOmissionSafety is the property the whole package
// exists for. A server that stalls every request by a fixed delay leaves
// a closed-loop generator reporting only the stall; an open-loop
// generator measuring from scheduled arrival must report queueing delay
// well above it for late arrivals when the stall exceeds the arrival
// interval times the connection pool.
func TestRunCoordinatedOmissionSafety(t *testing.T) {
	const stall = 100 * time.Millisecond
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(stall)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Options{
		BaseURL:         ts.URL,
		Rate:            100,
		Duration:        500 * time.Millisecond,
		Mix:             okMix("/certify"),
		SkipServerDelta: true,
		Timeout:         10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatalf("no accepted requests: %+v", rep)
	}
	// Every latency includes at least the server stall…
	if got := time.Duration(rep.Latency.P50NS); got < stall/2 {
		t.Fatalf("p50 %v below server stall %v: latency not measured end to end", got, stall)
	}
	// …and the generator stayed open-loop: it offered ~100/s even though
	// a closed loop over default connections would collapse to ~20/s.
	if rep.OfferedRate < 60 {
		t.Fatalf("offered rate %.1f collapsed — generator is not open-loop", rep.OfferedRate)
	}
}

// TestRunScheduleDeterminism pins that two runs with the same seed
// schedule the same arrival count for both processes (the schedule is a
// pure function of seed, rate and window).
func TestRunScheduleDeterminism(t *testing.T) {
	for _, arrival := range []string{ArrivalConstant, ArrivalPoisson} {
		counts := make([]int64, 2)
		for i := range counts {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(http.StatusOK)
			}))
			rep, err := Run(context.Background(), Options{
				BaseURL:         ts.URL,
				Rate:            500,
				Duration:        200 * time.Millisecond,
				Arrival:         arrival,
				Seed:            42,
				Mix:             okMix("/x"),
				SkipServerDelta: true,
			})
			ts.Close()
			if err != nil {
				t.Fatal(err)
			}
			counts[i] = rep.Requests + rep.WarmupRequests
		}
		if counts[0] != counts[1] {
			t.Errorf("%s: same seed scheduled %d then %d arrivals", arrival, counts[0], counts[1])
		}
	}
}

// TestRunServerDelta exercises the /metrics scrape-diff path against a
// handler that exposes a live obs registry.
func TestRunServerDelta(t *testing.T) {
	reg := obs.NewRegistry()
	requests := reg.Counter("http_requests_total", "requests", obs.L("path", "/certify"), obs.L("code", "200"))
	shed := reg.Counter("http_requests_shed_total", "sheds", obs.L("path", "/certify"))
	depth := reg.Gauge("engine_queue_depth", "queue depth")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if err := obs.WriteMerged(w, reg); err != nil {
			t.Error(err)
		}
	})
	mux.HandleFunc("/certify", func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		if requests.Value()%3 == 0 {
			shed.Inc()
			depth.Inc()
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Rate:     300,
		Duration: 200 * time.Millisecond,
		Mix:      okMix("/certify"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Server == nil {
		t.Fatal("no server delta")
	}
	sd := rep.Server
	if sd.RequestsByPath["/certify"] == 0 {
		t.Fatalf("request delta missing: %+v", sd)
	}
	if sd.ShedByPath["/certify"] == 0 {
		t.Fatalf("shed delta missing: %+v", sd)
	}
	if sd.QueueDepth == 0 {
		t.Fatalf("queue depth last-value missing: %+v", sd)
	}
	// The server's request count must cover at least the measured window
	// (warmup requests also hit it, so >=).
	if sd.RequestsByPath["/certify"] < float64(rep.Requests) {
		t.Fatalf("server saw %.0f requests, report claims %d measured",
			sd.RequestsByPath["/certify"], rep.Requests)
	}
}

// TestRunScrapeFailure surfaces a broken /metrics endpoint as an error
// instead of a report with a silently missing server section.
func TestRunScrapeFailure(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no metrics here", http.StatusNotFound)
	}))
	defer ts.Close()
	_, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Rate:     10,
		Duration: 50 * time.Millisecond,
		Mix:      okMix("/certify"),
	})
	if err == nil {
		t.Fatal("Run succeeded despite unscrapeable /metrics")
	}
}

// TestRunContextCancel stops the dispatcher promptly and still returns a
// well-formed report.
func TestRunContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, Options{
		BaseURL:         ts.URL,
		Rate:            10,
		Duration:        time.Hour,
		Mix:             okMix("/certify"),
		SkipServerDelta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v", elapsed)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("report malformed after cancel: %+v", rep)
	}
}

// TestStandardMixShapes builds the canonical mix and checks every body
// parses as JSON and the weights and paths are sane.
func TestStandardMixShapes(t *testing.T) {
	mix, err := StandardMix()
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 5 {
		t.Fatalf("mix has %d targets", len(mix))
	}
	paths := map[string]bool{}
	rng := rand.New(rand.NewSource(7))
	for _, tgt := range mix {
		if tgt.Weight <= 0 {
			t.Errorf("%s: weight %d", tgt.Name, tgt.Weight)
		}
		paths[tgt.Path] = true
		for i := 0; i < 16; i++ {
			body := tgt.Body(rng)
			if tgt.ContentType == StreamContentType {
				g, err := wire.DecodeGraphStream(bytes.NewReader(body), wire.StreamLimits{})
				if err != nil {
					t.Fatalf("%s body %d: %v", tgt.Name, i, err)
				}
				if g.N() < 4096 || g.N() > 16384 {
					t.Fatalf("%s body %d: n=%d outside the large-graph class", tgt.Name, i, g.N())
				}
				continue
			}
			var v map[string]any
			if err := json.Unmarshal(body, &v); err != nil {
				t.Fatalf("%s body %d: %v", tgt.Name, i, err)
			}
		}
	}
	for _, p := range []string{"/certify", "/verify", "/simulate", "/batch"} {
		if !paths[p] {
			t.Errorf("mix missing %s", p)
		}
	}
	// The large-graph class posts binary stream bodies with the certify
	// parameters in the query string.
	var large *Target
	for i := range mix {
		if mix[i].Name == "certify-large" {
			large = &mix[i]
		}
	}
	if large == nil {
		t.Fatal("mix missing certify-large")
	}
	if !strings.HasPrefix(large.Path, "/certify?") || !strings.Contains(large.Path, "scheme=tw-mso") {
		t.Errorf("certify-large path %q lacks query parameters", large.Path)
	}
	// The verify bodies must carry certificates and an explicit graph.
	for _, tgt := range mix {
		if tgt.Name != "verify" {
			continue
		}
		var v struct {
			Certificates []string       `json:"certificates"`
			Graph        map[string]any `json:"graph"`
		}
		if err := json.Unmarshal(tgt.Body(rng), &v); err != nil {
			t.Fatal(err)
		}
		if len(v.Certificates) == 0 || v.Graph == nil {
			t.Fatalf("verify body lacks certificates or graph: %+v", v)
		}
	}
}

// TestFireContentType pins the header contract: targets default to JSON,
// and a stream target's content type reaches the server verbatim (the
// server routes on it, so a silent default here would send large bodies
// down the JSON decoder).
func TestFireContentType(t *testing.T) {
	var gotJSON, gotStream atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/json":
			gotJSON.Store(r.Header.Get("Content-Type"))
		case "/stream":
			gotStream.Store(r.Header.Get("Content-Type"))
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	mix := []Target{
		{Name: "j", Path: "/json", Weight: 1, Body: func(*rand.Rand) []byte { return []byte(`{}`) }},
		{Name: "s", Path: "/stream", Weight: 1, Body: func(*rand.Rand) []byte { return []byte("x") },
			ContentType: StreamContentType},
	}
	var st targetStats
	var overall obs.Histogram
	for i := range mix {
		fire(srv.Client(), srv.URL, &mix[i], mix[i].Body(nil), time.Now(), true, firePolicy{}, &st, &overall)
	}
	if ct, _ := gotJSON.Load().(string); ct != "application/json" {
		t.Errorf("json target sent Content-Type %q", ct)
	}
	if ct, _ := gotStream.Load().(string); ct != StreamContentType {
		t.Errorf("stream target sent Content-Type %q", ct)
	}
}

func TestPickTargetRespectsWeights(t *testing.T) {
	mix := []Target{
		{Name: "a", Weight: 9, Body: func(*rand.Rand) []byte { return nil }},
		{Name: "b", Weight: 1, Body: func(*rand.Rand) []byte { return nil }},
	}
	rng := rand.New(rand.NewSource(3))
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		counts[pickTarget(rng, mix, 10)]++
	}
	fracA := float64(counts[0]) / 10000
	if fracA < 0.85 || fracA > 0.95 {
		t.Fatalf("target a drew %.2f of arrivals, want ~0.9", fracA)
	}
}

// TestFireRetriesOn429 sheds the first attempt and accepts the second:
// the request must end in the ok bucket, marked as rescued by retry,
// with no shed recorded.
func TestFireRetriesOn429(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	var st targetStats
	var overall obs.Histogram
	mix := okMix("/certify")
	pol := firePolicy{retries: 3, budget: time.Second, jitterSeed: 1}
	fire(ts.Client(), ts.URL, &mix[0], nil, time.Now(), true, pol, &st, &overall)
	if st.ok.Value() != 1 || st.shed.Value() != 0 {
		t.Fatalf("ok=%d shed=%d, want 1/0", st.ok.Value(), st.shed.Value())
	}
	if st.retries.Value() != 1 || st.retryOK.Value() != 1 || st.retryGaveUp.Value() != 0 {
		t.Fatalf("retries=%d retryOK=%d gaveUp=%d, want 1/1/0",
			st.retries.Value(), st.retryOK.Value(), st.retryGaveUp.Value())
	}
	if st.requests.Value() != 1 {
		t.Fatalf("requests=%d: retries must not inflate the logical count", st.requests.Value())
	}
}

// TestFireRetryExhaustion sheds every attempt: after the allowance runs
// out the request is shed once, marked gave-up, with every extra
// attempt counted.
func TestFireRetryExhaustion(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	var st targetStats
	var overall obs.Histogram
	mix := okMix("/certify")
	pol := firePolicy{retries: 2, budget: time.Minute, jitterSeed: 1}
	fire(ts.Client(), ts.URL, &mix[0], nil, time.Now(), true, pol, &st, &overall)
	if got := n.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 1 + 2 retries", got)
	}
	if st.shed.Value() != 1 || st.retryGaveUp.Value() != 1 || st.retries.Value() != 2 {
		t.Fatalf("shed=%d gaveUp=%d retries=%d, want 1/1/2",
			st.shed.Value(), st.retryGaveUp.Value(), st.retries.Value())
	}
}

// TestFireRetryBudget makes the server demand a Retry-After far beyond
// the backoff budget: the request must give up immediately instead of
// sleeping past its budget.
func TestFireRetryBudget(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	var st targetStats
	var overall obs.Histogram
	mix := okMix("/certify")
	pol := firePolicy{retries: 3, budget: 50 * time.Millisecond, jitterSeed: 1}
	start := time.Now()
	fire(ts.Client(), ts.URL, &mix[0], nil, start, true, pol, &st, &overall)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fire slept %v past a %v budget", elapsed, pol.budget)
	}
	if got := n.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (budget forbids the wait)", got)
	}
	if st.shed.Value() != 1 || st.retryGaveUp.Value() != 1 {
		t.Fatalf("shed=%d gaveUp=%d, want 1/1", st.shed.Value(), st.retryGaveUp.Value())
	}
}

// TestFireEnvelopeVerification drives enveloped and bare error bodies
// through chaos-mode fire and checks only the bare one is flagged.
func TestFireEnvelopeVerification(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/good" {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"injected fault"}`))
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`oops`))
	}))
	defer ts.Close()
	var overall obs.Histogram
	pol := firePolicy{verifyEnvelope: true}
	var good, bad targetStats
	gm := okMix("/good")
	fire(ts.Client(), ts.URL, &gm[0], nil, time.Now(), true, pol, &good, &overall)
	bm := okMix("/bad")
	fire(ts.Client(), ts.URL, &bm[0], nil, time.Now(), true, pol, &bad, &overall)
	if good.envelopeViolations.Value() != 0 {
		t.Fatalf("enveloped 500 flagged as violation")
	}
	if bad.envelopeViolations.Value() != 1 {
		t.Fatalf("bare 500 not flagged")
	}
	if good.errs.Value() != 1 || bad.errs.Value() != 1 {
		t.Fatalf("errs=%d/%d, want 1/1", good.errs.Value(), bad.errs.Value())
	}
}

// TestRunRetryReport checks the retry counters surface in the report and
// its totals when retries are enabled on a Run.
func TestRunRetryReport(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Shed only the very first attempt: exactly one request gets
		// rescued by a retry, every other goes straight through.
		if n.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Options{
		BaseURL:         ts.URL,
		Rate:            100,
		Duration:        300 * time.Millisecond,
		Mix:             okMix("/certify"),
		Retries:         2,
		SkipServerDelta: true,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 || rep.RetryOK == 0 {
		t.Fatalf("no retries surfaced in report: %+v", rep)
	}
	if rep.Endpoints[0].Retries != rep.Retries || rep.Endpoints[0].RetryOK != rep.RetryOK {
		t.Fatalf("endpoint/total mismatch: %+v vs %+v", rep.Endpoints[0], rep)
	}
	if rep.Shed != 0 {
		t.Fatalf("alternating 429s should all be rescued, shed=%d", rep.Shed)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"2", 2 * time.Second}, {" 1 ", time.Second},
		{"-3", 0}, {"soon", 0}, {"Wed, 21 Oct 2015 07:28:00 GMT", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
