// Package loadgen is an open-loop, coordinated-omission-safe load
// generator for the certification service. Arrivals are scheduled by a
// constant-rate or Poisson process fixed in advance of any response:
// the generator never waits for the server before firing the next
// request, so a slow server faces exactly the offered rate instead of a
// politely backing-off closed loop. Every latency is measured from the
// request's *scheduled* arrival time — a request the client could not
// even send on time counts its queueing delay, which is precisely the
// delay a real user would see (the coordinated-omission correction).
//
// A run is warmup then measurement: arrivals scheduled inside the warmup
// window fire normally (caches warm, connections open) but stay out of
// the report. The report carries offered vs achieved rate, per-endpoint
// latency quantiles off obs.Histogram, shed (429) and error counts, and
// — when the target exposes /metrics — a server-side scrape delta
// computed with obs.DiffSnapshots, so one artifact holds both sides of
// the run.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Target is one weighted endpoint of the workload mix.
type Target struct {
	// Name labels the endpoint in the report, e.g. "certify".
	Name string
	// Path is the request path, e.g. "/certify". Requests are POSTs.
	Path string
	// Weight is the target's relative share of arrivals (> 0).
	Weight int
	// Body builds one request body. It runs on the dispatcher goroutine,
	// so it may use the shared rng without synchronization; it must not
	// block.
	Body func(rng *rand.Rand) []byte
	// ContentType labels the body; empty means "application/json". The
	// binary stream targets set the wire-v2 media type so the server
	// routes them down the streaming decode path.
	ContentType string
}

// Arrival processes.
const (
	// ArrivalConstant schedules arrivals at exactly 1/rate intervals.
	ArrivalConstant = "constant"
	// ArrivalPoisson schedules exponentially distributed inter-arrival
	// gaps with mean 1/rate — bursty, like independent user traffic.
	ArrivalPoisson = "poisson"
)

// Options configures a run.
type Options struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Rate is the offered arrival rate in requests/second.
	Rate float64
	// Duration is the measurement window.
	Duration time.Duration
	// Warmup precedes measurement; its arrivals fire but are not
	// reported.
	Warmup time.Duration
	// Arrival is ArrivalConstant (default) or ArrivalPoisson.
	Arrival string
	// Seed drives the arrival process, the mix choice and the body
	// builders; runs with equal seeds schedule identical workloads.
	Seed int64
	// Mix is the weighted endpoint set; required.
	Mix []Target
	// Timeout bounds each request (default 10s). It also bounds the
	// generator's outstanding-request memory: at offered rate R the
	// generator holds at most R×Timeout requests in flight.
	Timeout time.Duration
	// Retries is the per-request cap on 429 retries. When positive, a
	// shed response is retried after honoring its Retry-After header
	// (plus capped exponential backoff with jitter); a request counts as
	// shed only once its retries are exhausted. 0 disables retries, which
	// also preserves the exact arrival schedule of earlier report
	// versions for a given seed.
	Retries int
	// RetryBudget caps the total backoff a single request may spend
	// across its retries; past it the request gives up even with retries
	// left. Defaults to Timeout when Retries is positive.
	RetryBudget time.Duration
	// VerifyEnvelope makes every non-2xx response body load-bearing: it
	// must parse as the server's JSON error envelope ({"error": "..."}),
	// and violations are counted per endpoint. This is the chaos-mode
	// client-side invariant — fault injection may turn responses into
	// 5xx, but never into envelope-less ones.
	VerifyEnvelope bool
	// SkipServerDelta disables the /metrics scrapes around the run.
	SkipServerDelta bool
	// Client overrides the HTTP client (tests). When nil, a client with
	// Timeout and an idle-connection pool sized for the offered rate is
	// built.
	Client *http.Client
}

// validate applies defaults and rejects unusable options.
func (o *Options) validate() error {
	if o.BaseURL == "" {
		return fmt.Errorf("loadgen: no base URL")
	}
	if o.Rate <= 0 {
		return fmt.Errorf("loadgen: rate %v must be positive", o.Rate)
	}
	if o.Duration <= 0 {
		return fmt.Errorf("loadgen: duration %v must be positive", o.Duration)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("loadgen: negative warmup %v", o.Warmup)
	}
	switch o.Arrival {
	case "":
		o.Arrival = ArrivalConstant
	case ArrivalConstant, ArrivalPoisson:
	default:
		return fmt.Errorf("loadgen: unknown arrival process %q (known: %s, %s)",
			o.Arrival, ArrivalConstant, ArrivalPoisson)
	}
	if len(o.Mix) == 0 {
		return fmt.Errorf("loadgen: empty workload mix")
	}
	for i, tgt := range o.Mix {
		if tgt.Weight <= 0 {
			return fmt.Errorf("loadgen: mix[%d] %q has non-positive weight %d", i, tgt.Name, tgt.Weight)
		}
		if tgt.Body == nil {
			return fmt.Errorf("loadgen: mix[%d] %q has no body builder", i, tgt.Name)
		}
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Retries < 0 {
		return fmt.Errorf("loadgen: negative retries %d", o.Retries)
	}
	if o.Retries > 0 && o.RetryBudget <= 0 {
		o.RetryBudget = o.Timeout
	}
	return nil
}

// targetStats accumulates one endpoint's measured outcomes. Counters and
// the histogram are the obs primitives, so concurrent completions need no
// extra locking.
type targetStats struct {
	requests, ok, shed, errs obs.Counter
	// retryAfterMissing counts 429s violating the Retry-After contract.
	retryAfterMissing obs.Counter
	// retries counts extra attempts sent after a 429; retryOK counts
	// requests rescued by a retry (shed first, accepted eventually);
	// retryGaveUp counts requests still shed after exhausting their
	// retry allowance or backoff budget.
	retries, retryOK, retryGaveUp obs.Counter
	// timeouts is the subset of errs that were client-side timeouts —
	// the request outlived Options.Timeout (or its context deadline).
	timeouts obs.Counter
	// envelopeViolations counts non-2xx responses whose body was not the
	// server's JSON error envelope (counted only under VerifyEnvelope).
	envelopeViolations obs.Counter
	// latency holds accepted-request latency from scheduled arrival.
	latency obs.Histogram
	// shedLatency holds shed-response latency: sheds must be fast —
	// that is their entire point — and this histogram proves it.
	shedLatency obs.Histogram
}

// Run executes one open-loop run and builds its report. The context
// cancels the dispatcher between arrivals; in-flight requests still run
// to completion (or their timeout) so the report stays well formed.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		// The default per-host idle cap (2) would churn connections at
		// any real rate; size the pool to the offered concurrency.
		tr.MaxIdleConns = 256
		tr.MaxIdleConnsPerHost = 256
		client = &http.Client{Timeout: opts.Timeout, Transport: tr}
		// The pool is private to this run: drop its idle connections on
		// the way out instead of parking hundreds of goroutines (client
		// loops and server conn handlers both) on the 90s idle timer.
		defer tr.CloseIdleConnections()
	}

	var before obs.ScrapeSnapshot
	if !opts.SkipServerDelta {
		var err error
		before, err = obs.ScrapeEndpoint(client, opts.BaseURL+"/metrics")
		if err != nil {
			return nil, fmt.Errorf("loadgen: pre-run scrape: %w", err)
		}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	totalWeight := 0
	for _, tgt := range opts.Mix {
		totalWeight += tgt.Weight
	}
	stats := make([]targetStats, len(opts.Mix))
	var warmupArrivals, measuredArrivals obs.Counter
	var overall obs.Histogram

	window := opts.Warmup + opts.Duration
	start := time.Now()
	var wg sync.WaitGroup
	offset := time.Duration(0)
dispatch:
	for offset < window {
		// Weighted target choice and body construction happen on the
		// dispatcher goroutine: rng stays unsynchronized and the fire
		// goroutine does nothing but send, receive and record.
		ti := pickTarget(rng, opts.Mix, totalWeight)
		body := opts.Mix[ti].Body(rng)
		pol := firePolicy{verifyEnvelope: opts.VerifyEnvelope}
		if opts.Retries > 0 {
			// The jitter seed is drawn only when retries are on, so a
			// retry-free run keeps the exact schedule earlier report
			// versions produced for the same seed.
			pol.retries = opts.Retries
			pol.budget = opts.RetryBudget
			pol.jitterSeed = rng.Int63()
		}
		scheduled := start.Add(offset)
		measured := offset >= opts.Warmup
		if d := time.Until(scheduled); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		if measured {
			measuredArrivals.Inc()
		} else {
			warmupArrivals.Inc()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fire(client, opts.BaseURL, &opts.Mix[ti], body, scheduled, measured, pol, &stats[ti], &overall)
		}()
		switch opts.Arrival {
		case ArrivalPoisson:
			offset += time.Duration(rng.ExpFloat64() / opts.Rate * float64(time.Second))
		default:
			offset += time.Duration(float64(time.Second) / opts.Rate)
		}
	}
	wg.Wait()

	var after obs.ScrapeSnapshot
	if !opts.SkipServerDelta {
		var err error
		after, err = obs.ScrapeEndpoint(client, opts.BaseURL+"/metrics")
		if err != nil {
			return nil, fmt.Errorf("loadgen: post-run scrape: %w", err)
		}
	}
	return buildReport(opts, stats, &overall,
		warmupArrivals.Value(), measuredArrivals.Value(), before, after), nil
}

// pickTarget draws a mix index proportionally to weight.
func pickTarget(rng *rand.Rand, mix []Target, totalWeight int) int {
	w := rng.Intn(totalWeight)
	for i, tgt := range mix {
		w -= tgt.Weight
		if w < 0 {
			return i
		}
	}
	return len(mix) - 1
}

// firePolicy carries the per-request retry and chaos-verification
// parameters from the dispatcher into the fire goroutine.
type firePolicy struct {
	// retries is the 429-retry allowance; 0 means fail-fast (legacy).
	retries int
	// budget caps the total backoff across one request's retries.
	budget time.Duration
	// jitterSeed seeds this request's backoff jitter, drawn from the
	// dispatcher rng so runs with equal seeds back off identically.
	jitterSeed int64
	// verifyEnvelope checks every non-2xx body against the error envelope.
	verifyEnvelope bool
}

// Backoff shape for 429 retries: exponential from retryBackoffBase,
// capped at retryBackoffCap, jittered to 50–150%. A Retry-After header
// takes precedence when it asks for longer.
const (
	retryBackoffBase = 50 * time.Millisecond
	retryBackoffCap  = 2 * time.Second
)

// fire sends one request and classifies its outcome. Latency runs from
// the scheduled arrival, not the send: if the client (or the dial, or a
// stalled connection pool, or a 429 backoff loop) delayed the final
// accepted response, that delay is part of what the scheduled arrival
// experienced.
func fire(client *http.Client, baseURL string, tgt *Target, body []byte, scheduled time.Time, measured bool, pol firePolicy, st *targetStats, overall *obs.Histogram) {
	ct := tgt.ContentType
	if ct == "" {
		ct = "application/json"
	}
	var jitter *rand.Rand
	attempt := 0
	backoffSpent := time.Duration(0)
	retried := false
	for {
		resp, err := client.Post(baseURL+tgt.Path, ct, bytes.NewReader(body))
		latency := time.Since(scheduled)
		if !measured {
			// Warmup arrivals never retry: they exist to warm caches and
			// connections, not to model client behavior.
			if err == nil {
				drain(resp)
			}
			return
		}
		if err != nil {
			st.requests.Inc()
			st.errs.Inc()
			if isTimeout(err) {
				st.timeouts.Inc()
			}
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < pol.retries {
			// Shed but retryable: honor the server's Retry-After, floor it
			// with capped exponential backoff, jitter to decorrelate the
			// retrying population, and stop once the budget is spent.
			retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
			drain(resp)
			if jitter == nil {
				jitter = rand.New(rand.NewSource(pol.jitterSeed))
			}
			wait := retryBackoffCap
			if attempt < 6 {
				wait = min(retryBackoffBase<<attempt, retryBackoffCap)
			}
			if retryAfter > wait {
				wait = retryAfter
			}
			wait = time.Duration(float64(wait) * (0.5 + jitter.Float64()))
			if backoffSpent+wait > pol.budget {
				st.requests.Inc()
				st.shed.Inc()
				st.shedLatency.Observe(latency)
				st.retries.Add(int64(attempt))
				st.retryGaveUp.Inc()
				return
			}
			backoffSpent += wait
			attempt++
			retried = true
			time.Sleep(wait)
			continue
		}
		st.requests.Inc()
		st.retries.Add(int64(attempt))
		if pol.verifyEnvelope && (resp.StatusCode < 200 || resp.StatusCode >= 300) {
			if !envelopeOK(resp) {
				st.envelopeViolations.Inc()
			}
		}
		defer drain(resp)
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			st.shed.Inc()
			st.shedLatency.Observe(latency)
			if retried {
				st.retryGaveUp.Inc()
			}
			if resp.Header.Get("Retry-After") == "" {
				st.retryAfterMissing.Inc()
			}
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			st.ok.Inc()
			if retried {
				st.retryOK.Inc()
			}
			st.latency.Observe(latency)
			overall.Observe(latency)
		default:
			st.errs.Inc()
		}
		return
	}
}

// parseRetryAfter reads a Retry-After header's delay-seconds form; the
// HTTP-date form and garbage both come back as zero (use the backoff).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// isTimeout reports whether a client error was a timeout — the request
// outlived http.Client.Timeout or its context deadline.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// envelopeOK reports whether a non-2xx response body is the server's
// JSON error envelope: an object with a non-empty "error" string.
func envelopeOK(resp *http.Response) bool {
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return false
	}
	var env struct {
		Error string `json:"error"`
	}
	return json.Unmarshal(body, &env) == nil && env.Error != ""
}

// drain consumes and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
