// Package loadgen is an open-loop, coordinated-omission-safe load
// generator for the certification service. Arrivals are scheduled by a
// constant-rate or Poisson process fixed in advance of any response:
// the generator never waits for the server before firing the next
// request, so a slow server faces exactly the offered rate instead of a
// politely backing-off closed loop. Every latency is measured from the
// request's *scheduled* arrival time — a request the client could not
// even send on time counts its queueing delay, which is precisely the
// delay a real user would see (the coordinated-omission correction).
//
// A run is warmup then measurement: arrivals scheduled inside the warmup
// window fire normally (caches warm, connections open) but stay out of
// the report. The report carries offered vs achieved rate, per-endpoint
// latency quantiles off obs.Histogram, shed (429) and error counts, and
// — when the target exposes /metrics — a server-side scrape delta
// computed with obs.DiffSnapshots, so one artifact holds both sides of
// the run.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Target is one weighted endpoint of the workload mix.
type Target struct {
	// Name labels the endpoint in the report, e.g. "certify".
	Name string
	// Path is the request path, e.g. "/certify". Requests are POSTs.
	Path string
	// Weight is the target's relative share of arrivals (> 0).
	Weight int
	// Body builds one request body. It runs on the dispatcher goroutine,
	// so it may use the shared rng without synchronization; it must not
	// block.
	Body func(rng *rand.Rand) []byte
	// ContentType labels the body; empty means "application/json". The
	// binary stream targets set the wire-v2 media type so the server
	// routes them down the streaming decode path.
	ContentType string
}

// Arrival processes.
const (
	// ArrivalConstant schedules arrivals at exactly 1/rate intervals.
	ArrivalConstant = "constant"
	// ArrivalPoisson schedules exponentially distributed inter-arrival
	// gaps with mean 1/rate — bursty, like independent user traffic.
	ArrivalPoisson = "poisson"
)

// Options configures a run.
type Options struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Rate is the offered arrival rate in requests/second.
	Rate float64
	// Duration is the measurement window.
	Duration time.Duration
	// Warmup precedes measurement; its arrivals fire but are not
	// reported.
	Warmup time.Duration
	// Arrival is ArrivalConstant (default) or ArrivalPoisson.
	Arrival string
	// Seed drives the arrival process, the mix choice and the body
	// builders; runs with equal seeds schedule identical workloads.
	Seed int64
	// Mix is the weighted endpoint set; required.
	Mix []Target
	// Timeout bounds each request (default 10s). It also bounds the
	// generator's outstanding-request memory: at offered rate R the
	// generator holds at most R×Timeout requests in flight.
	Timeout time.Duration
	// SkipServerDelta disables the /metrics scrapes around the run.
	SkipServerDelta bool
	// Client overrides the HTTP client (tests). When nil, a client with
	// Timeout and an idle-connection pool sized for the offered rate is
	// built.
	Client *http.Client
}

// validate applies defaults and rejects unusable options.
func (o *Options) validate() error {
	if o.BaseURL == "" {
		return fmt.Errorf("loadgen: no base URL")
	}
	if o.Rate <= 0 {
		return fmt.Errorf("loadgen: rate %v must be positive", o.Rate)
	}
	if o.Duration <= 0 {
		return fmt.Errorf("loadgen: duration %v must be positive", o.Duration)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("loadgen: negative warmup %v", o.Warmup)
	}
	switch o.Arrival {
	case "":
		o.Arrival = ArrivalConstant
	case ArrivalConstant, ArrivalPoisson:
	default:
		return fmt.Errorf("loadgen: unknown arrival process %q (known: %s, %s)",
			o.Arrival, ArrivalConstant, ArrivalPoisson)
	}
	if len(o.Mix) == 0 {
		return fmt.Errorf("loadgen: empty workload mix")
	}
	for i, tgt := range o.Mix {
		if tgt.Weight <= 0 {
			return fmt.Errorf("loadgen: mix[%d] %q has non-positive weight %d", i, tgt.Name, tgt.Weight)
		}
		if tgt.Body == nil {
			return fmt.Errorf("loadgen: mix[%d] %q has no body builder", i, tgt.Name)
		}
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	return nil
}

// targetStats accumulates one endpoint's measured outcomes. Counters and
// the histogram are the obs primitives, so concurrent completions need no
// extra locking.
type targetStats struct {
	requests, ok, shed, errs obs.Counter
	// retryAfterMissing counts 429s violating the Retry-After contract.
	retryAfterMissing obs.Counter
	// latency holds accepted-request latency from scheduled arrival.
	latency obs.Histogram
	// shedLatency holds shed-response latency: sheds must be fast —
	// that is their entire point — and this histogram proves it.
	shedLatency obs.Histogram
}

// Run executes one open-loop run and builds its report. The context
// cancels the dispatcher between arrivals; in-flight requests still run
// to completion (or their timeout) so the report stays well formed.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		// The default per-host idle cap (2) would churn connections at
		// any real rate; size the pool to the offered concurrency.
		tr.MaxIdleConns = 256
		tr.MaxIdleConnsPerHost = 256
		client = &http.Client{Timeout: opts.Timeout, Transport: tr}
	}

	var before obs.ScrapeSnapshot
	if !opts.SkipServerDelta {
		var err error
		before, err = obs.ScrapeEndpoint(client, opts.BaseURL+"/metrics")
		if err != nil {
			return nil, fmt.Errorf("loadgen: pre-run scrape: %w", err)
		}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	totalWeight := 0
	for _, tgt := range opts.Mix {
		totalWeight += tgt.Weight
	}
	stats := make([]targetStats, len(opts.Mix))
	var warmupArrivals, measuredArrivals obs.Counter
	var overall obs.Histogram

	window := opts.Warmup + opts.Duration
	start := time.Now()
	var wg sync.WaitGroup
	offset := time.Duration(0)
dispatch:
	for offset < window {
		// Weighted target choice and body construction happen on the
		// dispatcher goroutine: rng stays unsynchronized and the fire
		// goroutine does nothing but send, receive and record.
		ti := pickTarget(rng, opts.Mix, totalWeight)
		body := opts.Mix[ti].Body(rng)
		scheduled := start.Add(offset)
		measured := offset >= opts.Warmup
		if d := time.Until(scheduled); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		if measured {
			measuredArrivals.Inc()
		} else {
			warmupArrivals.Inc()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fire(client, opts.BaseURL, &opts.Mix[ti], body, scheduled, measured, &stats[ti], &overall)
		}()
		switch opts.Arrival {
		case ArrivalPoisson:
			offset += time.Duration(rng.ExpFloat64() / opts.Rate * float64(time.Second))
		default:
			offset += time.Duration(float64(time.Second) / opts.Rate)
		}
	}
	wg.Wait()

	var after obs.ScrapeSnapshot
	if !opts.SkipServerDelta {
		var err error
		after, err = obs.ScrapeEndpoint(client, opts.BaseURL+"/metrics")
		if err != nil {
			return nil, fmt.Errorf("loadgen: post-run scrape: %w", err)
		}
	}
	return buildReport(opts, stats, &overall,
		warmupArrivals.Value(), measuredArrivals.Value(), before, after), nil
}

// pickTarget draws a mix index proportionally to weight.
func pickTarget(rng *rand.Rand, mix []Target, totalWeight int) int {
	w := rng.Intn(totalWeight)
	for i, tgt := range mix {
		w -= tgt.Weight
		if w < 0 {
			return i
		}
	}
	return len(mix) - 1
}

// fire sends one request and classifies its outcome. Latency runs from
// the scheduled arrival, not the send: if the client (or the dial, or a
// stalled connection pool) delayed the send, that delay is part of what
// the scheduled arrival experienced.
func fire(client *http.Client, baseURL string, tgt *Target, body []byte, scheduled time.Time, measured bool, st *targetStats, overall *obs.Histogram) {
	ct := tgt.ContentType
	if ct == "" {
		ct = "application/json"
	}
	resp, err := client.Post(baseURL+tgt.Path, ct, bytes.NewReader(body))
	latency := time.Since(scheduled)
	if !measured {
		if err == nil {
			drain(resp)
		}
		return
	}
	st.requests.Inc()
	if err != nil {
		st.errs.Inc()
		return
	}
	defer drain(resp)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		st.shed.Inc()
		st.shedLatency.Observe(latency)
		if resp.Header.Get("Retry-After") == "" {
			st.retryAfterMissing.Inc()
		}
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		st.ok.Inc()
		st.latency.Observe(latency)
		overall.Observe(latency)
	default:
		st.errs.Inc()
	}
}

// drain consumes and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
