package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/registry"
	"repro/internal/wire"
)

// StreamContentType is the media type of the binary wire-v2 graph bodies
// the large-graph class POSTs; it must match what cmd/certserver routes
// to its streaming decoder.
const StreamContentType = "application/x-graph-stream"

// StandardMix is the canonical sustained-load workload: a weighted blend
// of the four hot POST endpoints, spanning scheme kinds (tree-automaton
// MSO, treewidth-bounded MSO, whole-graph universal) and graph sizes
// small through mid. Bodies are built once here — including locally
// proven certificate sets for /verify — and the per-request Body funcs
// only pick among them, so the dispatcher's per-arrival work is an
// index draw, not a marshal.
//
// The mix leans toward /certify (the service's reason to exist), keeps
// /verify warm with honest assignments proven in-process, and adds
// lighter /simulate and /batch traffic so the pipeline and queue-depth
// paths see load too.
func StandardMix() ([]Target, error) {
	certify := [][]byte{
		mustJobBody("tree-mso", params{Property: "perfect-matching"}, gen("path", 32, 0)),
		mustJobBody("tree-mso", params{Property: "perfect-matching"}, gen("path", 128, 0)),
		mustJobBody("tree-mso", params{Property: "is-star"}, gen("star", 24, 0)),
		mustJobBody("tree-mso", params{Property: "max-degree-<=2"}, gen("path", 64, 0)),
		mustJobBody("tw-mso", params{Property: "tw-bound", T: 2}, genT("partial-k-tree", 48, 2, 7)),
		mustJobBody("tw-mso", params{Property: "tw-bound", T: 2}, genT("k-tree", 32, 2, 3)),
		mustJobBody("universal", params{Property: "connected"}, gen("random-tree", 40, 5)),
	}
	verify, err := verifyBodies()
	if err != nil {
		return nil, err
	}
	simulate := [][]byte{
		mustMarshal(map[string]any{
			"scheme":    "tree-mso",
			"params":    params{Property: "perfect-matching"},
			"generator": gen("path", 32, 0),
			"workers":   2,
		}),
		mustMarshal(map[string]any{
			"scheme":    "universal",
			"params":    params{Property: "connected"},
			"generator": gen("star", 32, 0),
			"workers":   2,
		}),
	}
	batch := [][]byte{
		mustMarshal(map[string]any{
			"workers": 2,
			"jobs": []map[string]any{
				{"scheme": "tree-mso", "params": params{Property: "perfect-matching"}, "generator": gen("path", 16, 0)},
				{"scheme": "tree-mso", "params": params{Property: "perfect-matching"}, "generator": gen("path", 64, 0)},
				{"scheme": "tw-mso", "params": params{Property: "tw-bound", T: 2}, "generator": genT("partial-k-tree", 24, 2, 9)},
				{"scheme": "universal", "params": params{Property: "connected"}, "generator": gen("random-tree", 24, 2)},
			},
		}),
	}
	large, err := streamBodies()
	if err != nil {
		return nil, err
	}
	return []Target{
		{Name: "certify", Path: "/certify", Weight: 4, Body: pick(certify)},
		{Name: "verify", Path: "/verify", Weight: 2, Body: pick(verify)},
		{Name: "simulate", Path: "/simulate", Weight: 1, Body: pick(simulate)},
		{Name: "batch", Path: "/batch", Weight: 1, Body: pick(batch)},
		{
			Name: "certify-large",
			// t=6: the server decomposes stream-loaded graphs with the
			// heuristics (no witness crosses the wire), which land at
			// width 5 on these partial 4-trees — 6 leaves margin.
			Path:        "/certify?scheme=tw-mso&property=tw-bound&t=6",
			Weight:      1,
			Body:        pick(large),
			ContentType: StreamContentType,
		},
	}, nil
}

// streamBodies prebuilds the large-graph class: partial 4-trees at
// n=4096..16384 in the binary wire-v2 format. These exercise the
// streaming decode path and the sparse decomposition at sizes the JSON
// body shape would make pathological (a 16k-vertex edge list is a
// multi-megabyte JSON document; the stream body is a few hundred KB).
// Seeds are fixed so repeated arrivals hit the server's decomposition
// cache the way a steady client re-certifying one deployment would.
func streamBodies() ([][]byte, error) {
	var bodies [][]byte
	for i, n := range []int{4096, 8192, 16384} {
		g, _ := graphgen.PartialKTree(n, 4, 0.85, rand.New(rand.NewSource(int64(20+i))))
		var buf bytes.Buffer
		if err := wire.EncodeGraphStream(&buf, g); err != nil {
			return nil, fmt.Errorf("loadgen: encode stream body n=%d: %w", n, err)
		}
		bodies = append(bodies, buf.Bytes())
	}
	return bodies, nil
}

// params mirrors the server's paramsJSON wire shape.
type params struct {
	Property string `json:"property,omitempty"`
	Formula  string `json:"formula,omitempty"`
	T        int    `json:"t,omitempty"`
}

// gen builds a server-side generator spec.
func gen(kind string, n int, seed int64) *wire.GeneratorSpec {
	return &wire.GeneratorSpec{Kind: kind, N: n, Seed: seed}
}

// genT is gen for the treewidth-bounded kinds, which need a clique size.
func genT(kind string, n, t int, seed int64) *wire.GeneratorSpec {
	return &wire.GeneratorSpec{Kind: kind, N: n, T: t, Seed: seed}
}

// pick returns a Body func choosing uniformly among prebuilt bodies.
func pick(bodies [][]byte) func(rng *rand.Rand) []byte {
	return func(rng *rand.Rand) []byte { return bodies[rng.Intn(len(bodies))] }
}

// mustJobBody marshals a {scheme, params, generator} certify-shaped job.
// The inputs are package-internal literals, so a marshal failure is a
// programming error, not a runtime condition.
func mustJobBody(scheme string, p params, g *wire.GeneratorSpec) []byte {
	return mustMarshal(map[string]any{"scheme": scheme, "params": p, "generator": g})
}

func mustMarshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("loadgen: marshal workload body: %v", err))
	}
	return b
}

// verifyBodies proves honest assignments in-process and packages them as
// /verify payloads with explicit graphs, so the server-side referee is
// exercised with certificates it did not itself produce.
func verifyBodies() ([][]byte, error) {
	cache := engine.NewCache(registry.Default())
	type vcase struct {
		scheme string
		p      registry.Params
		g      *graph.Graph
	}
	cases := []vcase{
		{"tree-mso", registry.Params{Property: "perfect-matching"}, graphgen.Path(32)},
		{"tree-mso", registry.Params{Property: "is-star"}, graphgen.Star(24)},
		{"universal", registry.Params{Property: "connected"}, graphgen.Star(48)},
	}
	var bodies [][]byte
	for _, c := range cases {
		scheme, err := cache.GetOrCompile(c.scheme, c.p)
		if err != nil {
			return nil, fmt.Errorf("loadgen: compile %s: %w", c.scheme, err)
		}
		a, err := scheme.Prove(c.g)
		if err != nil {
			return nil, fmt.Errorf("loadgen: prove %s/%s: %w", c.scheme, c.p.Property, err)
		}
		gj := wire.GraphToJSON(c.g)
		bodies = append(bodies, mustMarshal(map[string]any{
			"scheme":       c.scheme,
			"params":       params{Property: c.p.Property, Formula: c.p.Formula, T: c.p.T},
			"graph":        &gj,
			"certificates": wire.AssignmentToStrings(a),
		}))
	}
	return bodies, nil
}
