package loadgen

import (
	"sort"
	"strings"

	"repro/internal/obs"
)

// ReportSchema names the JSON shape emitted by certload and consumed by
// slojson. Bump it when the shape changes incompatibly.
const ReportSchema = "certload/slo-report/v1"

// Quantiles summarizes one latency distribution in nanoseconds,
// quantiles read off the log2-bucketed obs.Histogram.
type Quantiles struct {
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// quantilesOf reads a histogram snapshot into the report shape.
func quantilesOf(h *obs.Histogram) Quantiles {
	snap := h.Snapshot()
	if snap.Count == 0 {
		return Quantiles{}
	}
	return Quantiles{
		P50NS:  snap.P50NS,
		P90NS:  snap.P90NS,
		P99NS:  snap.P99NS,
		P999NS: snap.Quantile(0.999),
		MaxNS:  snap.MaxNS,
	}
}

// EndpointReport is one mix target's measured outcomes.
type EndpointReport struct {
	Name     string `json:"name"`
	Path     string `json:"path"`
	Requests int64  `json:"requests"`
	OK       int64  `json:"ok"`
	Shed     int64  `json:"shed"`
	Errors   int64  `json:"errors"`
	// RetryAfterMissing counts 429 responses without a Retry-After
	// header — a server-contract violation the gate test also pins.
	RetryAfterMissing int64 `json:"retry_after_missing"`
	// Retries counts the extra attempts sent after 429s (zero unless the
	// run enabled Options.Retries). RetryOK counts requests shed at
	// least once but eventually accepted; RetryGaveUp counts requests
	// that stayed shed after exhausting their retry allowance or backoff
	// budget. Absent in pre-retry reports, which parse as zero.
	Retries     int64 `json:"retries,omitempty"`
	RetryOK     int64 `json:"retry_ok,omitempty"`
	RetryGaveUp int64 `json:"retry_gave_up,omitempty"`
	// Timeouts is the subset of Errors that were client-side timeouts.
	Timeouts int64 `json:"timeouts,omitempty"`
	// EnvelopeViolations counts non-2xx responses without the JSON error
	// envelope (counted only under Options.VerifyEnvelope — chaos runs).
	EnvelopeViolations int64 `json:"envelope_violations,omitempty"`
	// Latency covers accepted (2xx) requests, measured from scheduled
	// arrival.
	Latency Quantiles `json:"latency"`
	// ShedLatency covers 429 responses; sheds are only useful if fast.
	ShedLatency Quantiles `json:"shed_latency"`
}

// ServerDelta is the server's own account of the run: the difference of
// two /metrics scrapes taken immediately before and after.
type ServerDelta struct {
	// RequestsByPath is the http_requests_total delta per path, summed
	// over status codes.
	RequestsByPath map[string]float64 `json:"requests_by_path,omitempty"`
	// ShedByPath is the http_requests_shed_total delta per path.
	ShedByPath map[string]float64 `json:"shed_by_path,omitempty"`
	// PhaseSamples is the certify phase-histogram _count delta per phase.
	PhaseSamples map[string]float64 `json:"phase_samples,omitempty"`
	// InflightByPath is the post-run http_inflight_requests value per
	// path; non-zero values mean the server still held requests after
	// the generator finished.
	InflightByPath map[string]float64 `json:"inflight_by_path,omitempty"`
	// QueueDepth is the post-run engine_queue_depth value.
	QueueDepth float64 `json:"queue_depth"`
}

// Report is the full artifact of one run.
type Report struct {
	Schema  string `json:"schema"`
	BaseURL string `json:"base_url"`
	Arrival string `json:"arrival"`
	Seed    int64  `json:"seed"`

	TargetRate      float64 `json:"target_rate"`
	WarmupSeconds   float64 `json:"warmup_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`

	// OfferedRate is what the generator actually scheduled inside the
	// measurement window; it trails TargetRate only if the dispatcher
	// itself could not keep up or the run was cancelled.
	OfferedRate float64 `json:"offered_rate"`
	// AchievedRate counts accepted (2xx) completions per measured second.
	AchievedRate float64 `json:"achieved_rate"`

	WarmupRequests int64 `json:"warmup_requests"`
	Requests       int64 `json:"requests"`
	OK             int64 `json:"ok"`
	Shed           int64 `json:"shed"`
	Errors         int64 `json:"errors"`

	// Retry and timeout totals across endpoints; all zero (and omitted)
	// in reports from runs without retries, so pre-retry artifacts
	// (SLO_PR8.json, SLO_PR9.json) keep validating unchanged.
	Retries            int64 `json:"retries,omitempty"`
	RetryOK            int64 `json:"retry_ok,omitempty"`
	RetryGaveUp        int64 `json:"retry_gave_up,omitempty"`
	Timeouts           int64 `json:"timeouts,omitempty"`
	EnvelopeViolations int64 `json:"envelope_violations,omitempty"`

	// Latency aggregates accepted requests across all endpoints.
	Latency   Quantiles        `json:"latency"`
	Endpoints []EndpointReport `json:"endpoints"`

	// Server is nil when the run skipped the /metrics scrapes.
	Server *ServerDelta `json:"server,omitempty"`
}

// buildReport assembles the artifact from the run's accumulated state.
func buildReport(opts Options, stats []targetStats, overall *obs.Histogram,
	warmupArrivals, measuredArrivals int64,
	before, after obs.ScrapeSnapshot) *Report {
	rep := &Report{
		Schema:          ReportSchema,
		BaseURL:         opts.BaseURL,
		Arrival:         opts.Arrival,
		Seed:            opts.Seed,
		TargetRate:      opts.Rate,
		WarmupSeconds:   opts.Warmup.Seconds(),
		DurationSeconds: opts.Duration.Seconds(),
		WarmupRequests:  warmupArrivals,
		Latency:         quantilesOf(overall),
	}
	for i := range stats {
		st := &stats[i]
		ep := EndpointReport{
			Name:               opts.Mix[i].Name,
			Path:               opts.Mix[i].Path,
			Requests:           st.requests.Value(),
			OK:                 st.ok.Value(),
			Shed:               st.shed.Value(),
			Errors:             st.errs.Value(),
			RetryAfterMissing:  st.retryAfterMissing.Value(),
			Retries:            st.retries.Value(),
			RetryOK:            st.retryOK.Value(),
			RetryGaveUp:        st.retryGaveUp.Value(),
			Timeouts:           st.timeouts.Value(),
			EnvelopeViolations: st.envelopeViolations.Value(),
			Latency:            quantilesOf(&st.latency),
			ShedLatency:        quantilesOf(&st.shedLatency),
		}
		rep.Requests += ep.Requests
		rep.OK += ep.OK
		rep.Shed += ep.Shed
		rep.Errors += ep.Errors
		rep.Retries += ep.Retries
		rep.RetryOK += ep.RetryOK
		rep.RetryGaveUp += ep.RetryGaveUp
		rep.Timeouts += ep.Timeouts
		rep.EnvelopeViolations += ep.EnvelopeViolations
		rep.Endpoints = append(rep.Endpoints, ep)
	}
	sort.Slice(rep.Endpoints, func(i, j int) bool { return rep.Endpoints[i].Name < rep.Endpoints[j].Name })

	// Rates are over the measurement window. The elapsed wall clock can
	// exceed warmup+duration by stragglers' completion time; the window
	// the arrivals were scheduled into is the honest denominator.
	window := opts.Duration.Seconds()
	if window > 0 {
		rep.OfferedRate = float64(measuredArrivals) / window
		rep.AchievedRate = float64(rep.OK) / window
	}

	if before != nil || after != nil {
		rep.Server = buildServerDelta(obs.DiffSnapshots(before, after))
	}
	return rep
}

// buildServerDelta projects the raw scrape diff onto the handful of
// series the SLO story cares about.
func buildServerDelta(diff obs.ScrapeDiff) *ServerDelta {
	sd := &ServerDelta{}
	sd.RequestsByPath = sumByLabel(diff.DeltasByName("http_requests_total"), "path")
	sd.ShedByPath = sumByLabel(diff.DeltasByName("http_requests_shed_total"), "path")
	sd.PhaseSamples = sumByLabel(diff.DeltasByName("certify_phase_seconds_count"), "phase")
	sd.InflightByPath = lastByLabel(diff, "http_inflight_requests", "path")
	if v, ok := diff.Value("engine_queue_depth"); ok {
		sd.QueueDepth = v
	}
	return sd
}

// sumByLabel folds a per-series delta map down to one value per label,
// summing over every other label dimension (e.g. status code).
func sumByLabel(deltas map[string]float64, label string) map[string]float64 {
	if len(deltas) == 0 {
		return nil
	}
	out := make(map[string]float64)
	for series, d := range deltas {
		_, labels, err := obs.SplitSeriesKey(series)
		if err != nil {
			continue
		}
		out[labels[label]] += d
	}
	return out
}

// lastByLabel reads the post-run value of every series of a family,
// keyed by one label.
func lastByLabel(diff obs.ScrapeDiff, family, label string) map[string]float64 {
	var out map[string]float64
	for series, v := range diff.After {
		name, labels, err := obs.SplitSeriesKey(series)
		if err != nil || name != family {
			continue
		}
		if !strings.HasPrefix(series, family) {
			continue
		}
		if out == nil {
			out = make(map[string]float64)
		}
		out[labels[label]] = v
	}
	return out
}
