// Package ef implements the Ehrenfeucht–Fraïssé game of Section 3.2: the
// canonical tool for proving equivalence of structures under FO sentences
// of bounded quantifier depth.
//
// Theorem 3.3: Duplicator has a winning strategy in the k-round EF game on
// (G, H) if and only if G ≃_k H, i.e. G and H satisfy the same FO
// sentences of quantifier depth at most k.
//
// The solver performs exhaustive game-tree search with memoization; it is
// meant for the small structures the paper manipulates (kernels, automaton
// state representatives), where k is the quantifier depth of a fixed
// formula.
package ef

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Structure is a graph with optional vertex labels, the class of models on
// which the games are played. A nil Labels slice means all-zero labels.
type Structure struct {
	G      *graph.Graph
	Labels []int
}

// NewStructure wraps an unlabeled graph.
func NewStructure(g *graph.Graph) Structure { return Structure{G: g} }

func (s Structure) label(v int) int {
	if s.Labels == nil {
		return 0
	}
	return s.Labels[v]
}

// Equivalent reports whether Duplicator wins the k-round EF game on
// (a, b), equivalently whether a ≃_k b.
func Equivalent(a, b Structure, k int) bool {
	s := &solver{a: a, b: b, memo: map[string]bool{}}
	return s.duplicatorWins(nil, nil, k)
}

// EquivalentGraphs is Equivalent for unlabeled graphs.
func EquivalentGraphs(g, h *graph.Graph, k int) bool {
	return Equivalent(NewStructure(g), NewStructure(h), k)
}

// DistinguishingDepth returns the least k <= maxK such that Spoiler wins
// the k-round game (the structures disagree on some depth-k sentence), or
// -1 if they are equivalent up to maxK rounds.
func DistinguishingDepth(a, b Structure, maxK int) int {
	for k := 0; k <= maxK; k++ {
		if !Equivalent(a, b, k) {
			return k
		}
	}
	return -1
}

type solver struct {
	a, b Structure
	memo map[string]bool
}

// duplicatorWins decides the game position where pa, pb are the vertices
// pebbled so far in a and b (pa[i] paired with pb[i], the pairing is
// always a partial isomorphism by construction) and r rounds remain.
func (s *solver) duplicatorWins(pa, pb []int, r int) bool {
	if r == 0 {
		return true
	}
	key := positionKey(pa, pb, r)
	if v, ok := s.memo[key]; ok {
		return v
	}
	win := true
	// Spoiler may play any vertex in either structure; Duplicator must
	// answer in the other. Duplicator wins the position iff for every
	// Spoiler move some answer keeps a partial isomorphism and wins on.
	for u := 0; u < s.a.G.N() && win; u++ {
		if !s.duplicatorAnswers(pa, pb, u, true, r) {
			win = false
		}
	}
	for v := 0; v < s.b.G.N() && win; v++ {
		if !s.duplicatorAnswers(pa, pb, v, false, r) {
			win = false
		}
	}
	s.memo[key] = win
	return win
}

// duplicatorAnswers reports whether Duplicator has a winning answer to
// Spoiler playing vertex `move` in structure a (inA=true) or b.
func (s *solver) duplicatorAnswers(pa, pb []int, move int, inA bool, r int) bool {
	if inA {
		for v := 0; v < s.b.G.N(); v++ {
			if s.extends(pa, pb, move, v) && s.duplicatorWins(append(pa, move), append(pb, v), r-1) {
				return true
			}
		}
		return false
	}
	for u := 0; u < s.a.G.N(); u++ {
		if s.extends(pa, pb, u, move) && s.duplicatorWins(append(pa, u), append(pb, move), r-1) {
			return true
		}
	}
	return false
}

// extends reports whether adding the pair (u, v) keeps the pairing a
// partial isomorphism: equality pattern, adjacency pattern and labels must
// all agree.
func (s *solver) extends(pa, pb []int, u, v int) bool {
	if s.a.label(u) != s.b.label(v) {
		return false
	}
	for i := range pa {
		if (pa[i] == u) != (pb[i] == v) {
			return false
		}
		if s.a.G.HasEdge(pa[i], u) != s.b.G.HasEdge(pb[i], v) {
			return false
		}
	}
	return true
}

// positionKey canonicalizes a position: the pair multiset is order-
// insensitive for game purposes (the pairing, not the order pairs were
// created in, determines the position), so pairs are sorted.
func positionKey(pa, pb []int, r int) string {
	type pair struct{ a, b int }
	pairs := make([]pair, len(pa))
	for i := range pa {
		pairs[i] = pair{pa[i], pb[i]}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(r))
	for _, p := range pairs {
		sb.WriteByte('|')
		sb.WriteString(strconv.Itoa(p.a))
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(p.b))
	}
	return sb.String()
}
