package ef

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/logic"
)

func TestReflexivity(t *testing.T) {
	graphs := []*graph.Graph{
		graphgen.Path(4), graphgen.Cycle(5), graphgen.Clique(4), graphgen.Star(5),
	}
	for _, g := range graphs {
		for k := 0; k <= 3; k++ {
			if !EquivalentGraphs(g, g, k) {
				t.Errorf("G !~_%d G for %v", k, g)
			}
		}
	}
}

func TestIsomorphicGraphsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		g := graphgen.RandomTree(7, rng)
		perm := rng.Perm(7)
		h := graph.New(7)
		for _, e := range g.Edges() {
			h.MustAddEdge(perm[e[0]], perm[e[1]])
		}
		for k := 0; k <= 3; k++ {
			if !EquivalentGraphs(g, h, k) {
				t.Errorf("trial %d: relabelled tree not ~_%d", trial, k)
			}
		}
	}
}

func TestKnownDistinguishablePairs(t *testing.T) {
	cases := []struct {
		name string
		a, b *graph.Graph
		k    int
		want bool // Equivalent at depth k?
	}{
		// P3 has a dominating vertex (depth-2 property), P4 does not.
		{"P3 vs P4 at 2", graphgen.Path(3), graphgen.Path(4), 2, false},
		// Lemma A.3: depth-2 sentences only see <=1 vertex / clique /
		// dominating vertex. P4 and P5 agree on all three.
		{"P4 vs P5 at 2", graphgen.Path(4), graphgen.Path(5), 2, true},
		// K3 is a clique, C4 is not (nonadjacent distinct pair, depth 2).
		{"K3 vs C4 at 2", graphgen.Clique(3), graphgen.Cycle(4), 2, false},
		// P2 vs P3: P3 has a nonadjacent pair.
		{"P2 vs P3 at 2", graphgen.Path(2), graphgen.Path(3), 2, false},
		// C5 vs C6: diameter 2 vs 3 is a depth-3 difference...
		{"C5 vs C6 at 3", graphgen.Cycle(5), graphgen.Cycle(6), 3, false},
		// ...but no depth-2 sentence separates two non-clique, dominant-
		// free graphs (Lemma A.3 again).
		{"C5 vs C6 at 2", graphgen.Cycle(5), graphgen.Cycle(6), 2, true},
		// Depth 1 separates nothing among non-empty graphs.
		{"P1 vs K4 at 1", graphgen.Path(1), graphgen.Clique(4), 1, true},
		// ... but P1 vs K4 at 2: K4 has two distinct vertices.
		{"P1 vs K4 at 2", graphgen.Path(1), graphgen.Clique(4), 2, false},
	}
	for _, c := range cases {
		if got := EquivalentGraphs(c.a, c.b, c.k); got != c.want {
			t.Errorf("%s: Equivalent = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEquivalenceIsMonotoneInK(t *testing.T) {
	// If Spoiler wins with k rounds he wins with more.
	a, b := graphgen.Path(3), graphgen.Path(4)
	wonAt := -1
	for k := 0; k <= 4; k++ {
		eq := EquivalentGraphs(a, b, k)
		if !eq && wonAt == -1 {
			wonAt = k
		}
		if wonAt != -1 && eq {
			t.Fatalf("equivalence regained at k=%d after losing at %d", k, wonAt)
		}
	}
	if wonAt == -1 {
		t.Fatal("P3 and P4 never distinguished")
	}
}

func TestDistinguishingDepth(t *testing.T) {
	if d := DistinguishingDepth(NewStructure(graphgen.Path(3)), NewStructure(graphgen.Path(4)), 4); d != 2 {
		t.Errorf("P3/P4 distinguishing depth = %d, want 2", d)
	}
	if d := DistinguishingDepth(NewStructure(graphgen.Path(4)), NewStructure(graphgen.Path(4)), 3); d != -1 {
		t.Errorf("identical graphs distinguished at %d", d)
	}
}

// TestAgreementWithFOBattery is the soundness link to Theorem 3.3: if
// Duplicator wins the k-round game, the two graphs must agree on every FO
// sentence of depth <= k.
func TestAgreementWithFOBattery(t *testing.T) {
	battery := []struct {
		f logic.Formula
		k int
	}{
		{logic.HasEdge(), 2},
		{logic.IsClique(), 2},
		{logic.HasDominatingVertex(), 2},
		{logic.HasAtMostOneVertex(), 2},
		{logic.DiameterAtMost2(), 3},
		{logic.TriangleFree(), 3},
		{logic.MustParse("forall x. exists y. x ~ y"), 2},
		{logic.MustParse("exists x. exists y. exists z. x ~ y & y ~ z & !(x = z) & !(x ~ z)"), 3},
	}
	pairs := [][2]*graph.Graph{
		{graphgen.Path(4), graphgen.Path(5)},
		{graphgen.Cycle(5), graphgen.Cycle(6)},
		{graphgen.Cycle(6), graphgen.Cycle(7)},
		{graphgen.Star(5), graphgen.Star(6)},
		{graphgen.Path(6), graphgen.Cycle(6)},
		{graphgen.Clique(4), graphgen.Clique(5)},
	}
	for _, pr := range pairs {
		for _, item := range battery {
			if !EquivalentGraphs(pr[0], pr[1], item.k) {
				continue // Spoiler wins: no agreement promised
			}
			va, err1 := logic.Eval(item.f, logic.NewModel(pr[0]))
			vb, err2 := logic.Eval(item.f, logic.NewModel(pr[1]))
			if err1 != nil || err2 != nil {
				t.Fatalf("%v %v", err1, err2)
			}
			if va != vb {
				t.Errorf("G ~_%d H but %q differs on %v vs %v", item.k, item.f, pr[0], pr[1])
			}
		}
	}
}

func TestLabelsMatter(t *testing.T) {
	g := graphgen.Path(2)
	a := Structure{G: g, Labels: []int{0, 0}}
	b := Structure{G: g, Labels: []int{0, 1}}
	if Equivalent(a, b, 1) {
		t.Fatal("structures with different label multisets equivalent at depth 1")
	}
	if !Equivalent(a, a, 3) {
		t.Fatal("labeled structure not self-equivalent")
	}
}

func TestDepthZeroAlwaysEquivalent(t *testing.T) {
	if !EquivalentGraphs(graphgen.Path(1), graphgen.Clique(9), 0) {
		t.Fatal("0-round game lost")
	}
}

func BenchmarkEquivalentPaths(b *testing.B) {
	g, h := graphgen.Path(12), graphgen.Path(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EquivalentGraphs(g, h, 3)
	}
}
