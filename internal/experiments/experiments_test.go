package experiments

import (
	"strings"
	"testing"
)

// Render must produce an aligned table: header, one line per row, one
// "note:" line per note, with columns padded to the widest cell.
func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:    "E0",
		Title: "render check",
		Head:  []string{"n", "bits"},
		Rows: [][]string{
			{"8", "12"},
			{"1024", "12"},
		},
		Notes: []string{"flat column reproduces O(1)"},
	}
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "== E0: render check ==" {
		t.Fatalf("banner = %q", lines[0])
	}
	// Column "n" is 4 wide (widest cell "1024"): the header pads to it.
	if !strings.HasPrefix(lines[1], "n     bits") {
		t.Fatalf("header not aligned: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "8     12") || !strings.HasPrefix(lines[3], "1024  12") {
		t.Fatalf("rows not aligned: %q / %q", lines[2], lines[3])
	}
	if lines[4] != "note: flat column reproduces O(1)" {
		t.Fatalf("note = %q", lines[4])
	}
}

// E1b is cheap and deterministic: the discovered automaton must plateau
// (a constant number of states for growing paths).
func TestE1TypeDiscovery(t *testing.T) {
	tbl, err := E1TypeDiscovery()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tbl.Rows))
	}
	last := tbl.Rows[len(tbl.Rows)-1][1]
	prev := tbl.Rows[len(tbl.Rows)-2][1]
	if last != prev {
		t.Fatalf("state count did not plateau: %v vs %v", prev, last)
	}
}

// E8 exercises the registry-built Lemma 2.1 schemes; the separation must
// hold on every row: existential and depth-2 bits strictly below the
// universal baseline.
func TestE8SmallFragments(t *testing.T) {
	tbl, err := E8SmallFragments()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 4 {
			t.Fatalf("row %v has %d cells, want 4", row, len(row))
		}
		var n, ex, d2, uni int
		for i, cell := range row {
			v := 0
			for _, c := range cell {
				v = v*10 + int(c-'0')
			}
			switch i {
			case 0:
				n = v
			case 1:
				ex = v
			case 2:
				d2 = v
			case 3:
				uni = v
			}
		}
		if ex >= uni || d2 >= uni {
			t.Fatalf("n=%d: no separation (ex=%d, d2=%d, uni=%d)", n, ex, d2, uni)
		}
	}
}

// E11 is the adversarial soundness acceptance check: on the three chosen
// scheme kinds every mutating tamper must be detected (rate 1.00 on every
// row), no-op trials are accounted separately, and every tamper family
// member appears for every scheme.
func TestE11SoundnessAllDetected(t *testing.T) {
	tbl, err := E11Soundness(1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 schemes x 5 standard tampers + tw-mso x (5 standard + 2 bag).
	if len(tbl.Rows) != 22 {
		t.Fatalf("%d rows, want 22", len(tbl.Rows))
	}
	schemes := map[string]bool{}
	sawMutation := false
	for _, row := range tbl.Rows {
		schemes[row[0]] = true
		noops, mutated, detected, rate := row[3], row[4], row[5], row[6]
		if rate != "1.00" {
			t.Fatalf("scheme %s tamper %s: detection rate %s (noops=%s mutated=%s detected=%s)",
				row[0], row[1], rate, noops, mutated, detected)
		}
		if mutated != detected {
			t.Fatalf("scheme %s tamper %s: %s mutated but %s detected", row[0], row[1], mutated, detected)
		}
		if mutated != "0" {
			sawMutation = true
		}
	}
	if len(schemes) != 4 {
		t.Fatalf("expected 4 scheme kinds, saw %v", schemes)
	}
	bagKinds := 0
	for _, row := range tbl.Rows {
		if row[0] == "tw-mso(tw<=2)" && strings.HasPrefix(row[1], "corrupt-bag") {
			bagKinds++
		}
	}
	if bagKinds != 2 {
		t.Fatalf("tw-mso row is missing the decomposition-aware tampers (%d found)", bagKinds)
	}
	if !sawMutation {
		t.Fatal("sweep never mutated anything — the table is vacuous")
	}
	for _, note := range tbl.Notes {
		if strings.Contains(note, "SOUNDNESS FINDING") {
			t.Fatalf("soundness finding reported: %s", note)
		}
	}
}

// E3 with a fixed seed: the O(t log n) normalisation column must stay
// bounded (the paper's bound, experiment reproduced deterministically).
func TestE3TreedepthFixedSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("generates 512-vertex instances")
	}
	tbl, err := E3Treedepth(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tbl.Rows))
	}
	// Rows are deterministic for seed 1; re-running must agree.
	tbl2, err := E3Treedepth(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		for j := range tbl.Rows[i] {
			if tbl.Rows[i][j] != tbl2.Rows[i][j] {
				t.Fatalf("row %d cell %d not deterministic: %q vs %q", i, j, tbl.Rows[i][j], tbl2.Rows[i][j])
			}
		}
	}
}

// E12: the certificate-size column must grow sublinearly at fixed width
// (the O(t log n) shape) and the heuristic-vs-exact rows must respect the
// lower bound.
func TestE12Treewidth(t *testing.T) {
	if testing.Short() {
		t.Skip("generates 1024-vertex instances")
	}
	tbl, err := E12Treewidth(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(tbl.Rows))
	}
	atoi := func(s string) int {
		v := 0
		for _, c := range s {
			v = v*10 + int(c-'0')
		}
		return v
	}
	// Size rows: 32 -> 1024 is a 32x growth in n; bits must grow far less
	// than linearly (they are ~log n at fixed width).
	first, last := atoi(tbl.Rows[0][2]), atoi(tbl.Rows[3][2])
	if last >= first*8 {
		t.Fatalf("certificate bits grew from %d to %d over 32x n — not logarithmic", first, last)
	}
	for _, row := range tbl.Rows[4:] {
		wf, wd, wx := atoi(row[4]), atoi(row[5]), atoi(row[6])
		if wf < wx || wd < wx {
			t.Fatalf("heuristic beats exact in row %v", row)
		}
	}
}

func TestE13Formulas(t *testing.T) {
	tbl, err := E13Formulas(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 {
		t.Fatalf("%d rows, want 11", len(tbl.Rows))
	}
	// The tree rows must stay O(1): single-digit certificates even at
	// quantifier depth 5, while the universal row pays hundreds of bits at
	// depth 3 — the hierarchy the experiment exists to show.
	byLabel := map[string][]string{}
	for _, row := range tbl.Rows {
		byLabel[row[0]] = row
	}
	for _, label := range []string{"MaxDegreeAtMost(2)", "DiameterAtMost(4)", "LeavesAtLeast(3)", "PerfectMatching"} {
		row, ok := byLabel[label]
		if !ok {
			t.Fatalf("missing row %s", label)
		}
		if len(row[6]) > 1 {
			t.Fatalf("%s: tree certificate %s bits, want single-digit O(1)", label, row[6])
		}
	}
	uni, ok := byLabel["DiameterAtMost2"]
	if !ok || len(uni[6]) < 3 {
		t.Fatalf("universal row missing or implausibly small: %v", uni)
	}
}
