// Package experiments regenerates every experiment of EXPERIMENTS.md
// (E1–E10, plus the E11 adversarial soundness sweep, the E12
// tree-decomposition workload and the E13 formula-compilation survey
// added on top of the paper's set): one function per experiment, each
// returning formatted table rows so that cmd/experiments and the
// benchmarks share the exact same code paths.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/automata"
	"repro/internal/cert"
	"repro/internal/combin"
	"repro/internal/commcc"
	"repro/internal/ef"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/kernel"
	"repro/internal/logic"
	"repro/internal/minor"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rooted"
	"repro/internal/spanning"
	"repro/internal/treedepth"
	"repro/internal/treewidth"
)

// Table is one experiment's output.
type Table struct {
	ID    string
	Title string
	Head  []string
	Rows  [][]string
	Notes []string
}

// Render formats the table for terminal output.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Head))
	for i, h := range t.Head {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Head)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// E1TreeMSO measures certificate sizes of Theorem 2.2 schemes on growing
// random trees: constant, versus the O(log n) spanning tree and O(n^2)
// universal baselines. Schemes are built through the shared registry —
// the same factories cmd/certify and cmd/certserver use.
func E1TreeMSO(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	reg := registry.Default()
	pm, err := reg.Build("tree-mso", registry.Params{Property: "perfect-matching"})
	if err != nil {
		return nil, err
	}
	deg3, err := reg.Build("tree-mso", registry.Params{Property: "max-degree-<=3"})
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:    "E1a",
		Title: "Theorem 2.2 — MSO on trees: max certificate bits vs n",
		Head:  []string{"n", "pm(bits)", "maxdeg3(bits)", "spanning(bits)", "universal(bits)"},
	}
	for _, n := range []int{16, 64, 256, 1024} {
		// A path with even length has a perfect matching and degree <= 3.
		g := graphgen.Path(n)
		apm, err := pm.Prove(g)
		if err != nil {
			return nil, err
		}
		adeg, err := deg3.Prove(g)
		if err != nil {
			return nil, err
		}
		asp, err := (spanning.Tree{}).Prove(g)
		if err != nil {
			return nil, err
		}
		uniBits := n*(n-1)/2 + 2*n // adjacency triangle + id varints, analytic
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(apm.MaxBits()), fmt.Sprint(adeg.MaxBits()),
			fmt.Sprint(asp.MaxBits()), fmt.Sprintf("~%d", uniBits),
		})
	}
	_ = rng
	table.Notes = append(table.Notes, "paper: O(1) for MSO on trees; flat columns 2 and 3 reproduce it")
	return table, nil
}

// E1b measures the state-count plateau of the FO type compiler.
func E1TypeDiscovery() (*Table, error) {
	tc, err := automata.NewTypeCompiler(logic.HasDominatingVertex())
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:    "E1b",
		Title: "Theorem 2.2 (compiler) — discovered automaton states vs n (paths)",
		Head:  []string{"n", "states"},
	}
	for _, n := range []int{5, 10, 20, 40, 80} {
		t, err := rooted.FromGraph(graphgen.Path(n), 0)
		if err != nil {
			return nil, err
		}
		if _, err := tc.AssignStates(t); err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{fmt.Sprint(n), fmt.Sprint(tc.NumClasses())})
	}
	table.Notes = append(table.Notes, "plateau = finitely many rank-k types = O(1) certificates")
	return table, nil
}

// E2FPF reports the information-theoretic shape of Theorem 2.3: injection
// capacity vs n, the implied lower bound l/r, and the universal upper
// bound.
func E2FPF() (*Table, error) {
	table := &Table{
		ID:    "E2",
		Title: "Theorem 2.3 — fixed-point-free automorphism needs Theta~(n) bits",
		Head:  []string{"n(half)", "l=cap(bits)", "r", "lower l/r", "log2#trees(depth3)", "universal(bits)"},
	}
	for _, leaves := range []int{64, 256, 1024} {
		l := combin.Depth2TreeCapacityBits(leaves)
		low := commcc.ImpliedLowerBound(l, 2)
		n := leaves + 2
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(leaves), fmt.Sprint(l), "2", fmt.Sprintf("%.0f", low),
			fmt.Sprintf("%.0f", combin.Log2TreesOfDepth(leaves, 3)),
			fmt.Sprintf("~%d", n*(n-1)/2),
		})
	}
	table.Notes = append(table.Notes,
		"depth-2 coding: capacity Theta(sqrt n); depth-3 counting ([42]) shows Theta~(n) capacity",
		"the universal scheme is the matching upper bound (whole-graph description)")
	return table, nil
}

// E3Treedepth measures Theorem 2.4 certificate sizes vs n and t.
func E3Treedepth(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	table := &Table{
		ID:    "E3",
		Title: "Theorem 2.4 — treedepth<=t certification: max bits vs n and t",
		Head:  []string{"n", "t", "max bits", "bits/(t log2 n)"},
	}
	for _, t := range []int{3, 5} {
		for _, n := range []int{32, 128, 512} {
			g, parents := graphgen.BoundedTreedepth(n, t, 0.3, rng)
			s := &treedepth.Scheme{T: t, ModelProvider: func(gg *graph.Graph) (*rooted.Tree, error) {
				return treedepth.FromParentSlice(gg, parents)
			}}
			a, err := s.Prove(g)
			if err != nil {
				return nil, err
			}
			logn := log2f(float64(n))
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(t), fmt.Sprint(a.MaxBits()),
				fmt.Sprintf("%.2f", float64(a.MaxBits())/(float64(t)*logn)),
			})
		}
	}
	table.Notes = append(table.Notes, "last column ~constant reproduces O(t log n)")
	return table, nil
}

// E4TreedepthLB verifies Lemma 7.3 and reports the Theta(log n) implied
// bound of Theorem 2.5.
func E4TreedepthLB() (*Table, error) {
	table := &Table{
		ID:    "E4",
		Title: "Theorem 2.5 / Lemma 7.3 — treedepth gadget: 5 vs >=6, bound l/r",
		Head:  []string{"m", "n", "td(equal)", "td(unequal)", "l(bits)", "r", "l/r"},
	}
	for _, m := range []int{2, 3} {
		l := combin.MatchingCapacityBits(m)
		idPerm := make([]int, m)
		swapped := make([]int, m)
		for i := range idPerm {
			idPerm[i] = i
			swapped[i] = i
		}
		swapped[0], swapped[1] = swapped[1], swapped[0]
		gdEq, err := graphgen.TreedepthGadget(m, idPerm, idPerm)
		if err != nil {
			return nil, err
		}
		gdNe, err := graphgen.TreedepthGadget(m, idPerm, swapped)
		if err != nil {
			return nil, err
		}
		tdEq, _, err := treedepth.Exact(gdEq.G)
		if err != nil {
			return nil, err
		}
		tdNe, _, err := treedepth.Exact(gdNe.G)
		if err != nil {
			return nil, err
		}
		r := gdEq.MiddleSize()
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(m), fmt.Sprint(gdEq.G.N()), fmt.Sprint(tdEq), fmt.Sprint(tdNe),
			fmt.Sprint(l), fmt.Sprint(r),
			fmt.Sprintf("%.2f", commcc.ImpliedLowerBound(l, r)),
		})
	}
	// Larger m: exact treedepth is out of reach, but Lemma 7.3 pins the
	// values (verified above on the computable sizes); the implied bound
	// l/r now shows its logarithmic growth.
	for _, m := range []int{64, 1024, 16384} {
		l := combin.MatchingCapacityBits(m)
		r := 4*m + 1
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(m), fmt.Sprint(8*m + 1), "(5)", "(>=6)",
			fmt.Sprint(l), fmt.Sprint(r),
			fmt.Sprintf("%.2f", commcc.ImpliedLowerBound(l, r)),
		})
	}
	table.Notes = append(table.Notes,
		"td(equal)=5 and td(unequal)>=6 reproduce Lemma 7.3 (parenthesized = by the lemma)",
		"l ~ m log m and r ~ 4m give the Omega(log n) of Theorem 2.5: l/r grows like log m")
	return table, nil
}

// E5KernelMSO measures Theorem 2.6 certificate sizes vs n.
func E5KernelMSO(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	f := logic.MustParse("forall x. exists y. x ~ y")
	table := &Table{
		ID:    "E5",
		Title: "Theorem 2.6 — kernel MSO certification on treedepth<=3: bits vs n",
		Head:  []string{"n", "max bits", "registry", "kernel n"},
	}
	for _, n := range []int{32, 128, 512} {
		g, parents := graphgen.BoundedTreedepth(n, 3, 0.4, rng)
		s, err := kernel.NewMSOScheme(3, f)
		if err != nil {
			return nil, err
		}
		s.ModelProvider = func(gg *graph.Graph) (*rooted.Tree, error) {
			return treedepth.FromParentSlice(gg, parents)
		}
		a, err := s.Prove(g)
		if err != nil {
			return nil, err
		}
		holds, err := s.Holds(g)
		if err != nil || !holds {
			return nil, fmt.Errorf("E5: unexpected no-instance (%v)", err)
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(a.MaxBits()), fmt.Sprint(s.RegistrySize()), "-",
		})
	}
	table.Notes = append(table.Notes, "bits grow logarithmically; registry stabilizes (f(t,phi) term)")
	return table, nil
}

// E6KernelSize measures kernel sizes and type counts vs (k, t) against
// the Proposition 6.2 bound.
func E6KernelSize(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	table := &Table{
		ID:    "E6",
		Title: "Proposition 6.2 — kernel size and end types vs (k, t), n=200",
		Head:  []string{"k", "t", "kernel n", "types", "log2 f_1(k,t) bound"},
	}
	for _, k := range []int{1, 2} {
		for _, t := range []int{2, 3} {
			g, parents := graphgen.BoundedTreedepth(200, t, 0.4, rng)
			model, err := treedepth.FromParentSlice(g, parents)
			if err != nil {
				return nil, err
			}
			model, err = treedepth.MakeCoherent(g, model)
			if err != nil {
				return nil, err
			}
			red, err := kernel.Reduce(g, model, k)
			if err != nil {
				return nil, err
			}
			types := map[string]bool{}
			for v := 0; v < g.N(); v++ {
				types[red.EndType[v].Code()] = true
			}
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(k), fmt.Sprint(t), fmt.Sprint(red.Kernel.N()),
				fmt.Sprint(len(types)),
				fmt.Sprintf("%.1f", kernel.Log2TypeBound(1, k, t)),
			})
		}
	}
	table.Notes = append(table.Notes, "measured kernels and type counts are independent of n and far below the tower bound")
	return table, nil
}

// E7KernelEquivalence validates Proposition 6.3 by EF games and formula
// agreement.
func E7KernelEquivalence(seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	table := &Table{
		ID:    "E7",
		Title: "Proposition 6.3 — G ~_k kernel(G): EF games + formula battery",
		Head:  []string{"trials", "k", "EF agree", "formula agree"},
	}
	for _, k := range []int{1, 2} {
		trials, efOK, fOK := 12, 0, 0
		for i := 0; i < trials; i++ {
			g, _ := graphgen.BoundedTreedepth(8+rng.Intn(8), 3, 0.5, rng)
			_, model, err := treedepth.Exact(g)
			if err != nil {
				return nil, err
			}
			model, err = treedepth.MakeCoherent(g, model)
			if err != nil {
				return nil, err
			}
			red, err := kernel.Reduce(g, model, k)
			if err != nil {
				return nil, err
			}
			if ef.EquivalentGraphs(g, red.Kernel, k) {
				efOK++
			}
			f := logic.HasEdge()
			a, err1 := logic.Eval(f, logic.NewModel(g))
			b, err2 := logic.Eval(f, logic.NewModel(red.Kernel))
			if err1 == nil && err2 == nil && a == b {
				fOK++
			}
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(trials), fmt.Sprint(k),
			fmt.Sprintf("%d/%d", efOK, trials), fmt.Sprintf("%d/%d", fOK, trials),
		})
	}
	table.Notes = append(table.Notes, "paper proves 100%; anything less is a bug")
	return table, nil
}

// E8SmallFragments compares Lemma 2.1 schemes with the universal baseline.
func E8SmallFragments() (*Table, error) {
	table := &Table{
		ID:    "E8",
		Title: "Lemma 2.1 — existential FO and depth-2 FO vs universal baseline",
		Head:  []string{"n", "existential(bits)", "depth2(bits)", "universal(bits)"},
	}
	reg := registry.Default()
	ex, err := reg.Build("existential-fo", registry.Params{FormulaAST: logic.IndependentSetOfSize(3)})
	if err != nil {
		return nil, err
	}
	d2, err := reg.Build("depth2-fo", registry.Params{FormulaAST: logic.HasDominatingVertex()})
	if err != nil {
		return nil, err
	}
	uni, err := reg.Build("universal", registry.Params{
		Property: "dominating",
		PropertyFunc: func(g *graph.Graph) (bool, error) {
			for v := 0; v < g.N(); v++ {
				if g.Degree(v) == g.N()-1 {
					return true, nil
				}
			}
			return false, nil
		},
	})
	if err != nil {
		return nil, err
	}
	for _, n := range []int{16, 64, 256} {
		star := graphgen.Star(n)
		ae, err := ex.Prove(star)
		if err != nil {
			return nil, err
		}
		ad, err := d2.Prove(star)
		if err != nil {
			return nil, err
		}
		au, err := uni.Prove(star)
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(ae.MaxBits()), fmt.Sprint(ad.MaxBits()), fmt.Sprint(au.MaxBits()),
		})
	}
	table.Notes = append(table.Notes, "logarithmic vs quadratic separation")
	return table, nil
}

// E9MinorFree runs the Corollary 2.7 schemes.
func E9MinorFree() (*Table, error) {
	table := &Table{
		ID:    "E9",
		Title: "Corollary 2.7 — P_t- and C_t-minor-free certification sizes",
		Head:  []string{"family", "n", "max bits"},
	}
	pt, err := minor.NewPathMinorFreeScheme(4)
	if err != nil {
		return nil, err
	}
	for _, n := range []int{30, 120, 480} {
		a, err := pt.Prove(graphgen.Star(n))
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{"P4-minor-free star", fmt.Sprint(n), fmt.Sprint(a.MaxBits())})
	}
	ct, err := minor.NewCycleMinorFreeScheme(4)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{4, 16, 64} {
		g := cactusChain(k)
		a, err := ct.Prove(g)
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{"C4-minor-free cactus", fmt.Sprint(g.N()), fmt.Sprint(a.MaxBits())})
	}
	table.Notes = append(table.Notes, "both grow logarithmically in n")
	return table, nil
}

// E10Substrates: Figure 1 (td of paths), Figure 4 (game value), and
// Proposition 3.4 (spanning tree sizes), plus the distributed simulator.
func E10Substrates() (*Table, error) {
	table := &Table{
		ID:    "E10",
		Title: "Figures 1 & 4, Proposition 3.4 — substrate checks",
		Head:  []string{"item", "value", "expected"},
	}
	td7, _, err := treedepth.Exact(graphgen.Path(7))
	if err != nil {
		return nil, err
	}
	table.Rows = append(table.Rows, []string{"td(P7) (Figure 1)", fmt.Sprint(td7), "3"})
	gd, err := graphgen.TreedepthGadget(1, []int{0}, []int{0})
	if err != nil {
		return nil, err
	}
	cops, _, err := game.Play(gd.G, game.OptimalRobber{})
	if err != nil {
		return nil, err
	}
	table.Rows = append(table.Rows, []string{"cops on Figure 4 gadget", fmt.Sprint(cops), "5"})
	for _, n := range []int{64, 4096} {
		a, err := (spanning.Tree{}).Prove(graphgen.Path(n))
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("spanning-tree bits (n=%d)", n), fmt.Sprint(a.MaxBits()), "O(log n)",
		})
	}
	// Distributed simulator agreement.
	g := graphgen.Cycle(50)
	s := spanning.Tree{}
	a, err := s.Prove(g)
	if err != nil {
		return nil, err
	}
	rep, err := netsim.Run(context.Background(), g, s, a)
	if err != nil {
		return nil, err
	}
	seq, err := cert.RunSequential(g, s, a)
	if err != nil {
		return nil, err
	}
	table.Rows = append(table.Rows, []string{
		"distributed == sequential", fmt.Sprint(rep.Accepted == seq.Accepted), "true",
	})
	return table, nil
}

// E11Soundness runs the adversarial soundness sweep — every standard
// tamper applied to honest assignments, each corrupted variant verified on
// the sharded network simulator — across four scheme kinds whose
// verifiers pin every certificate, so every mutating corruption must be
// caught by at least one vertex. The tw-mso row additionally faces the
// decomposition-aware adversary (corrupt-bag-id / corrupt-bag-contents:
// semantic bag corruption with a correctly forged guard). (Witness-style
// schemes like treedepth are excluded on purpose: on a yes-instance a
// flipped bit can produce an alternative valid proof, which is not a
// soundness failure.)
func E11Soundness(seed int64) (*Table, error) {
	reg := registry.Default()
	table := &Table{
		ID:    "E11",
		Title: "Adversarial soundness — tamper detection on the sharded simulator",
		Head:  []string{"scheme", "tamper", "trials", "noops", "mutated", "detected", "rate"},
	}
	type instance struct {
		label   string
		scheme  cert.Scheme
		graph   *graph.Graph
		tampers []cert.Tamper
	}
	pm, err := reg.Build("tree-mso", registry.Params{Property: "perfect-matching"})
	if err != nil {
		return nil, err
	}
	uni, err := reg.Build("universal", registry.Params{Property: "connected"})
	if err != nil {
		return nil, err
	}
	tw, err := reg.Build("tw-mso", registry.Params{Property: "tw-bound", T: 2})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	twGraph, _ := graphgen.PartialKTree(28, 2, 0.5, rng)
	instances := []instance{
		{"tree-mso(pm)", pm, graphgen.Path(32), cert.StandardTampers()},
		{"universal(conn)", uni, graphgen.RandomTree(24, rng), cert.StandardTampers()},
		{"spanning-tree", spanning.Tree{}, graphgen.Cycle(40), cert.StandardTampers()},
		{"tw-mso(tw<=2)", tw, twGraph, append(cert.StandardTampers(), treewidth.BagTampers()...)},
	}
	const trials = 25
	for _, inst := range instances {
		honest, err := inst.scheme.Prove(inst.graph)
		if err != nil {
			return nil, fmt.Errorf("E11: %s: prove: %w", inst.label, err)
		}
		rep, err := netsim.Default.Sweep(context.Background(), inst.graph, inst.scheme, honest, inst.tampers, trials, seed)
		if err != nil {
			return nil, fmt.Errorf("E11: %s: sweep: %w", inst.label, err)
		}
		for _, st := range rep.Stats {
			table.Rows = append(table.Rows, []string{
				inst.label, st.Tamper, fmt.Sprint(st.Trials), fmt.Sprint(st.NoOps),
				fmt.Sprint(st.Mutated), fmt.Sprint(st.Detected),
				fmt.Sprintf("%.2f", st.DetectionRate()),
			})
		}
		if !rep.AllDetected {
			table.Notes = append(table.Notes,
				fmt.Sprintf("SOUNDNESS FINDING: %s accepted a corrupted assignment", inst.label))
		}
	}
	table.Notes = append(table.Notes,
		"rate = detected/mutated; no-op trials (tamper changed nothing) are excluded, not counted as escapes",
		"1.00 everywhere reproduces the one-round detection story of the self-stabilization deployment")
	return table, nil
}

// E12Treewidth measures the tree-decomposition workload: tw-mso
// certificate sizes vs n at fixed width (partial 3-trees with their
// ground-truth witness — the O(t log n) shape), and the elimination
// heuristics against exact branch-and-bound on small random graphs.
func E12Treewidth(seed int64) (*Table, error) {
	table := &Table{
		ID:    "E12",
		Title: "tw-mso — certificate size vs n at width 3; heuristic vs exact width",
		Head:  []string{"graph", "n", "max bits", "bits/(t log2 n)", "min-fill", "min-degree", "exact"},
	}
	reg := registry.Default()
	const k = 3
	for _, n := range []int{32, 128, 512, 1024} {
		rng := rand.New(rand.NewSource(seed))
		g, attach := graphgen.PartialKTree(n, k, 0.5, rng)
		s, err := reg.Build("tw-mso", registry.Params{
			Property: "tw-bound",
			T:        k,
			DecompProvider: func(gg *graph.Graph) (*treewidth.Decomposition, error) {
				return treewidth.FromKTree(gg.N(), k, attach)
			},
		})
		if err != nil {
			return nil, err
		}
		a, err := s.Prove(g)
		if err != nil {
			return nil, fmt.Errorf("E12: n=%d: %w", n, err)
		}
		res, err := cert.RunSequential(g, s, a)
		if err != nil {
			return nil, err
		}
		if !res.Accepted {
			return nil, fmt.Errorf("E12: n=%d: honest proof rejected at %v", n, res.Rejecters)
		}
		logn := log2f(float64(n))
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("partial-%d-tree", k), fmt.Sprint(n), fmt.Sprint(a.MaxBits()),
			fmt.Sprintf("%.2f", float64(a.MaxBits())/(float64(k)*logn)), "-", "-", "-",
		})
	}
	// Heuristic quality against ground truth on exactly solvable sizes.
	rng := rand.New(rand.NewSource(seed + 1))
	for trial := 0; trial < 4; trial++ {
		n := 10 + trial*2
		g := graphgen.RandomConnected(n, n/2+trial, rng)
		_, _, wf, err := treewidth.MinFill(g)
		if err != nil {
			return nil, err
		}
		_, _, wd, err := treewidth.MinDegree(g)
		if err != nil {
			return nil, err
		}
		wx, _, err := treewidth.Exact(g)
		if err != nil {
			return nil, err
		}
		if wf < wx || wd < wx {
			return nil, fmt.Errorf("E12: heuristic beat exact on %v", g)
		}
		table.Rows = append(table.Rows, []string{
			"random-conn", fmt.Sprint(n), "-", "-",
			fmt.Sprint(wf), fmt.Sprint(wd), fmt.Sprint(wx),
		})
	}
	table.Notes = append(table.Notes,
		"bits/(t log2 n) ~constant at fixed width reproduces the O(t log n) certificate shape",
		"heuristic columns >= exact column always; equality on most small instances")
	return table, nil
}

// E13Formulas measures the formula-first pipeline: certificate bits
// against quantifier depth and alternation count across library sentences,
// each compiled into the cheapest backend that certifies it (via the same
// registry factories the server uses). The tree rows reproduce the O(1)
// story at every depth; the tw-mso rows pay O(t log n); the universal
// model-checking rows pay O(n^2) regardless of depth — the paper's
// hierarchy, now indexed by the sentence itself.
func E13Formulas(seed int64) (*Table, error) {
	table := &Table{
		ID:    "E13",
		Title: "Formula compilation — certificate bits vs quantifier depth/alternation",
		Head:  []string{"sentence", "depth", "alt", "scheme", "graph", "n", "max bits"},
	}
	rng := rand.New(rand.NewSource(seed))
	type row struct {
		label   string
		formula logic.Formula
		scheme  string
		params  registry.Params
		graph   *graph.Graph
		gname   string
	}
	rows := []row{
		{"HasEdge", logic.HasEdge(), "existential-fo", registry.Params{}, graphgen.Path(64), "path"},
		{"ContainsPath(4)", logic.ContainsPath(4), "existential-fo", registry.Params{}, graphgen.Path(64), "path"},
		{"HasDominatingVertex", logic.HasDominatingVertex(), "depth2-fo", registry.Params{}, graphgen.Star(64), "star"},
		{"MaxDegreeAtMost(2)", logic.MaxDegreeAtMost(2), "tree-mso", registry.Params{}, graphgen.Path(64), "path"},
		{"DiameterAtMost(4)", logic.DiameterAtMost(4), "tree-mso", registry.Params{}, graphgen.Path(5), "path"},
		{"LeavesAtLeast(3)", logic.LeavesAtLeast(3), "tree-mso", registry.Params{}, graphgen.Star(64), "star"},
		{"PerfectMatching", logic.PerfectMatching(), "tree-mso", registry.Params{}, graphgen.Path(64), "path"},
		{"TwoColorable", logic.TwoColorable(), "tw-mso", registry.Params{T: 2}, graphgen.Cycle(64), "cycle"},
		{"ThreeColorable", logic.ThreeColorable(), "tw-mso", registry.Params{T: 2}, mustPartialKTree(64, 2, rng), "partial-2-tree"},
		{"TriangleFree", logic.TriangleFree(), "tw-mso", registry.Params{T: 2}, graphgen.Cycle(64), "cycle"},
		{"DiameterAtMost2", logic.DiameterAtMost2(), "universal", registry.Params{}, graphgen.Star(20), "star"},
	}
	reg := registry.Default()
	for _, r := range rows {
		p := r.params
		p.Formula = r.formula.String()
		s, err := reg.Build(r.scheme, p)
		if err != nil {
			return nil, fmt.Errorf("E13: %s: build: %w", r.label, err)
		}
		a, err := s.Prove(r.graph)
		if err != nil {
			return nil, fmt.Errorf("E13: %s: prove: %w", r.label, err)
		}
		res, err := cert.RunSequential(r.graph, s, a)
		if err != nil {
			return nil, err
		}
		if !res.Accepted {
			return nil, fmt.Errorf("E13: %s: honest proof rejected at %v", r.label, res.Rejecters)
		}
		table.Rows = append(table.Rows, []string{
			r.label,
			fmt.Sprint(logic.QuantifierDepth(r.formula)),
			fmt.Sprint(logic.Alternations(r.formula)),
			r.scheme,
			r.gname,
			fmt.Sprint(r.graph.N()),
			fmt.Sprint(a.MaxBits()),
		})
	}
	table.Notes = append(table.Notes,
		"every sentence reaches its backend through the one formula pipeline (registry ParamFormula)",
		"tree rows: bits stay O(1) as depth grows; tw rows: O(t log n); universal rows: O(n^2) at any depth")
	return table, nil
}

// mustPartialKTree builds a random partial k-tree for experiment tables.
func mustPartialKTree(n, k int, rng *rand.Rand) *graph.Graph {
	g, _ := graphgen.PartialKTree(n, k, 0.5, rng)
	return g
}

// cactusChain builds a chain of k triangles (C4-minor-free).
func cactusChain(k int) *graph.Graph {
	g := graph.New(2*k + 1)
	anchor := 0
	next := 1
	for i := 0; i < k; i++ {
		a, b := next, next+1
		next += 2
		g.MustAddEdge(anchor, a)
		g.MustAddEdge(a, b)
		g.MustAddEdge(b, anchor)
		anchor = b
	}
	return g
}

func log2f(x float64) float64 {
	l := 0.0
	for x >= 2 {
		x /= 2
		l++
	}
	return l + x - 1 // linear interpolation is plenty for reporting
}

// All runs every experiment.
func All(seed int64) ([]*Table, error) {
	var out []*Table
	steps := []func() (*Table, error){
		func() (*Table, error) { return E1TreeMSO(seed) },
		E1TypeDiscovery,
		E2FPF,
		func() (*Table, error) { return E3Treedepth(seed) },
		E4TreedepthLB,
		func() (*Table, error) { return E5KernelMSO(seed) },
		func() (*Table, error) { return E6KernelSize(seed) },
		func() (*Table, error) { return E7KernelEquivalence(seed) },
		E8SmallFragments,
		E9MinorFree,
		E10Substrates,
		func() (*Table, error) { return E11Soundness(seed) },
		func() (*Table, error) { return E12Treewidth(seed) },
		func() (*Table, error) { return E13Formulas(seed) },
	}
	for _, step := range steps {
		t, err := step()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
