// Negative pooldiscipline fixtures: the disciplined shapes already used
// across the repo, which the analyzer must accept without findings.
package fixture

import "sync"

type scratch struct {
	views []int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// release is a release wrapper (the internal/treewidth emsoScratch
// shape): passing the pooled object to it counts as a Put.
func (s *scratch) release() {
	s.views = s.views[:0]
	scratchPool.Put(s)
}

// The internal/treewidth MSOScheme.Verify shape: Get, defer Put.
func deferPut() int {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.views = append(sc.views[:0], 1)
	return len(sc.views)
}

// The emso solver shape: Get, defer a release-wrapper call.
func deferRelease() int {
	sc := scratchPool.Get().(*scratch)
	defer sc.release()
	sc.views = append(sc.views[:0], 1, 2)
	return len(sc.views)
}

// The netsim runShard shape: an explicit Put on the cancellation path and
// another before the normal return, with the result copied out so the
// scratch never escapes.
func putOnAllPaths(cancelled bool, n int) []int {
	sc := scratchPool.Get().(*scratch)
	views := sc.views[:0]
	if cancelled {
		sc.views = views
		scratchPool.Put(sc)
		return nil
	}
	for v := 0; v < n; v++ {
		views = append(views, v)
	}
	sc.views = views // keep grown capacity
	out := append([]int(nil), views...)
	scratchPool.Put(sc)
	return out
}

// Rebinding to a local does not escape.
func localAlias() {
	sc := scratchPool.Get().(*scratch)
	alias := sc
	alias.views = alias.views[:0]
	scratchPool.Put(sc)
}

// Derived scalar values do not alias the pooled object: a call boundary
// (len) or an arithmetic expression yields a fresh value.
func derivedValues() int {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.views = append(sc.views[:0], 3, 1)
	return len(sc.views) - cap(sc.views)
}
