// Positive pooldiscipline fixtures: Get/Put shapes the analyzer must
// flag. The leak-on-early-return shape is what the invariant exists to
// catch in internal/netsim and internal/treewidth, where a scratch that
// skips its Put on a cancellation path silently defeats the pool.
package fixture

import (
	"errors"
	"sync"
)

type buf struct {
	b []byte
}

var pool = sync.Pool{New: func() any { return new(buf) }}

var errFail = errors.New("fail")

func leakOnEarlyReturn(fail bool) error {
	sc := pool.Get().(*buf)
	if fail {
		return errFail // want "pooled sc from sync.Pool.Get is not returned to the pool"
	}
	pool.Put(sc)
	return nil
}

func leakOnFallThrough() {
	sc := pool.Get().(*buf)
	sc.b = sc.b[:0]
} // want "pooled sc from sync.Pool.Get is not returned to the pool"

func discardedGet() {
	_ = pool.Get() // want "sync.Pool.Get result is discarded"
}

var global *buf

func escapeToGlobal() {
	sc := pool.Get().(*buf)
	global = sc // want "pooled sc escapes via store into a non-local"
	pool.Put(sc)
}

type holder struct {
	sc *buf
}

func escapeToParamField(h *holder) {
	sc := pool.Get().(*buf)
	h.sc = sc // want "pooled sc escapes via store into a non-local"
	pool.Put(sc)
}

func escapeFromLiteral() func() *buf {
	return func() *buf {
		sc := pool.Get().(*buf)
		return sc // want "pooled sc"
	}
}

// getBuf is a getter wrapper (the netsim Engine.getScratch shape): its
// own escape is the point, so the discipline transfers to call sites —
// which must still Put on every path.
func getBuf() *buf {
	if sc, ok := pool.Get().(*buf); ok {
		return sc
	}
	return new(buf)
}

func leakFromWrapper(fail bool) error {
	sc := getBuf()
	if fail {
		return errFail // want "pooled sc from sync.Pool.Get is not returned to the pool"
	}
	pool.Put(sc)
	return nil
}

// Returning an interior slice aliases the pooled backing array.
func escapeViaField() []byte {
	sc := pool.Get().(*buf)
	defer pool.Put(sc)
	return sc.b // want "pooled sc escapes via return value"
}

// So does returning the address of an element.
func escapeViaElementAddr() *byte {
	sc := pool.Get().(*buf)
	defer pool.Put(sc)
	return &sc.b[0] // want "pooled sc escapes via return value"
}
