// Fixtures for the suppression mechanism: a reasoned
// `//certlint:ignore <reason>` on the flagged line or the line above
// silences the finding; a bare ignore suppresses nothing and is itself
// reported.
package fixture

import (
	"errors"
	"sync"
)

type buf struct {
	b []byte
}

var pool = sync.Pool{New: func() any { return new(buf) }}

var errFail = errors.New("fail")

func suppressedLeak(fail bool) error {
	sc := pool.Get().(*buf)
	if fail {
		//certlint:ignore fixture: the leak on this path is the point of the test
		return errFail
	}
	pool.Put(sc)
	return nil
}

func bareIgnoreDoesNotSuppress(fail bool) error {
	sc := pool.Get().(*buf)
	if fail {
		//certlint:ignore
		return errFail
	}
	pool.Put(sc)
	return nil
}
