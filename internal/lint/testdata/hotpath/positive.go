// Positive hotpath fixtures: each function below reproduces a per-call
// cost this PR removed from a real annotated hot function.
package fixture

import (
	"fmt"
	"slices"
	"time"
)

// Mirrors internal/treewidth/emso_engine.go (emsoSolver.up) before the
// fix: an error formatted inside the DP loop instead of a package-level
// sentinel.
//
//certlint:hotpath
func hotWithFmt(kind int) error {
	return fmt.Errorf("unknown node kind %v", kind) // want "calls fmt.Errorf"
}

// Mirrors internal/treedepth/scheme.go (CheckPayloads) before the fix: a
// fresh seen-set allocated per verification call.
//
//certlint:hotpath
func hotWithMapLiteral(ids []int) bool {
	seen := map[int]bool{} // want "allocates a map per call"
	for _, id := range ids {
		if seen[id] {
			return false
		}
		seen[id] = true
	}
	return true
}

//certlint:hotpath
func hotWithMakeMap(n int) int {
	m := make(map[int]int, n) // want "allocates a map per call"
	return len(m)
}

// Mirrors internal/netsim/netsim.go (runShard) before the fix: a sort
// comparator closure allocated per vertex.
//
//certlint:hotpath
func hotWithClosure(xs []int) {
	slices.SortFunc(xs, func(a, b int) int { return a - b }) // want "allocates a closure per call"
}

//certlint:hotpath
func hotWithClock() int64 {
	return time.Now().UnixNano() // want "reads time.Now"
}
