// Negative hotpath fixtures: the same operations are fine outside
// annotated functions, and an annotated function using package-level
// helpers and caller-owned scratch is clean.
package fixture

import (
	"fmt"
	"slices"
	"time"
)

// Unannotated: fmt, clocks, maps and closures are all allowed.
func coldPath(n int) string {
	m := make(map[int]int, n)
	slices.SortFunc([]int{2, 1}, func(a, b int) int { return a - b })
	return fmt.Sprintf("%d %d %d", len(m), time.Now().Unix(), n)
}

// cmpInt is hoisted to package level, the internal/netsim
// cmpNeighborView shape, so the annotated sort allocates nothing.
func cmpInt(a, b int) int { return a - b }

// The post-fix shape of a hot verifier: slice scans instead of sets,
// package-level comparators, scratch passed in by the caller.
//
//certlint:hotpath
func hotClean(ids, scratch []int) bool {
	for i, id := range ids {
		for _, prev := range ids[:i] {
			if prev == id {
				return false
			}
		}
	}
	scratch = append(scratch[:0], ids...)
	slices.SortFunc(scratch, cmpInt)
	return true
}
