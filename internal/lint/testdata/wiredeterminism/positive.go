// Positive wiredeterminism fixtures: map iteration reaching encoded
// bytes. The repo's real encoders (internal/wire, the treewidth payload
// builders) all collect and sort before emitting — one unsorted range
// here would break PR5's byte-identical witness tests.
package fixture

func EncodeSizes(sizes map[string]int) []byte {
	var out []byte
	for k, v := range sizes { // want "range over map in encode path EncodeSizes"
		out = append(out, byte(len(k)), byte(v))
	}
	return out
}

// MarshalAdjacency reaches flattenAdj through a same-package call, so the
// helper is part of the encode path too.
func MarshalAdjacency(adj map[int][]int) []byte {
	return flattenAdj(adj)
}

func flattenAdj(adj map[int][]int) []byte {
	var out []byte
	for v, ns := range adj { // want "range over map in encode path flattenAdj"
		out = append(out, byte(v), byte(len(ns)))
	}
	return out
}

// writeMembership is wire-bound by annotation rather than by name.
//
//certlint:wire
func writeMembership(member map[int]bool) []int {
	var out []int
	for k := range member { // want "range over map in encode path writeMembership"
		if member[k] {
			out = append(out, k)
		}
	}
	return out
}
