// Negative wiredeterminism fixtures: the collect-then-sort idiom every
// real encoder in this repo uses (internal/wire generator specs, the
// EMSO FreeVars listing), and map iteration outside encode paths.
package fixture

import "sort"

func EncodeSorted(sizes map[string]int) []byte {
	// The benign prefix: a range whose body only collects keys, followed
	// by a sort before anything is emitted.
	keys := make([]string, 0, len(sizes))
	for k := range sizes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = append(out, byte(len(k)), byte(sizes[k]))
	}
	return out
}

// histogramTotal is not an encode root and nothing wire-bound reaches it:
// iteration order does not matter for a sum.
func histogramTotal(counts map[int]int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}
