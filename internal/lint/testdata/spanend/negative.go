// Negative spanend fixtures: the disciplined lifecycles already used
// across the repo, which the analyzer must accept without findings.
package fixture

import (
	"context"
	"os"

	"repro/internal/obs"
)

// The common shape: End deferred right after Start.
func deferEnd(ctx context.Context) {
	ctx, sp := obs.Start(ctx, "phase")
	defer sp.End()
	_ = ctx
}

// The internal/engine/pipeline.go job-span shape: End inside a deferred
// closure that also flushes metrics.
func deferClosureEnd(ctx context.Context) {
	_, sp := obs.Start(ctx, "job")
	defer func() {
		sp.End()
		sp.SetAttr("outcome", "done")
	}()
}

// The pipeline verify-span shape: one span ended in both arms of an
// if/else, with returns after the join.
func endInBothBranches(ctx context.Context, distributed bool) error {
	_, sp := obs.Start(ctx, "verify")
	if distributed {
		sp.SetAttr("mode", "distributed")
		sp.End()
	} else {
		sp.SetAttr("mode", "sequential")
		sp.End()
	}
	return nil
}

// The cmd/certserver/server.go prove-span shape: a span acquired and
// ended entirely inside a nested block, with error returns both inside
// (after End) and far below the block.
func nestedBlockSpan(ctx context.Context, prove, fail bool) error {
	if prove {
		_, sp := obs.Start(ctx, "prove")
		sp.End()
		if fail {
			return errFail
		}
	}
	if fail {
		return errFail
	}
	return nil
}

// End before every early return, then fall through.
func endBeforeEarlyReturn(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "phase")
	sp.End()
	if fail {
		return errFail
	}
	return nil
}

// End in every case including default, for switch, type switch and
// select alike.
func endInEverySwitchCase(ctx context.Context, mode int, v any, ch chan int) {
	_, sp := obs.Start(ctx, "switch")
	switch mode {
	case 0:
		sp.End()
	default:
		sp.End()
	}
	_, tsp := obs.Start(ctx, "typeswitch")
	switch v.(type) {
	case int:
		tsp.End()
	default:
		tsp.End()
	}
	_, ssp := obs.Start(ctx, "select")
	select {
	case <-ch:
		ssp.End()
	default:
		ssp.End()
	}
}

// Paths that panic or exit are not return paths.
func terminatorsAreNotReturns(ctx context.Context, bad, worse bool) {
	_, sp := obs.Start(ctx, "phase")
	if bad {
		panic("bad")
	}
	if worse {
		os.Exit(2)
	}
	sp.End()
}

// Loops: End after a range loop, a labeled continue, and an infinite
// loop left only via break.
func endAfterLoops(ctx context.Context, xs []int) {
	_, sp := obs.Start(ctx, "phase")
	total := 0
outer:
	for _, x := range xs {
		for _, y := range xs {
			if x == y {
				continue outer
			}
			total += y
		}
	}
	for {
		if total >= 0 {
			break
		}
	}
	sp.End()
}

// A span serving an infinite loop with a deferred End: the body never
// falls through, and the defer covers it anyway.
func serveForever(ctx context.Context, ch chan int) {
	_, sp := obs.Start(ctx, "serve")
	defer sp.End()
	for {
		if _, ok := <-ch; !ok {
			return
		}
	}
}
