// Positive spanend fixtures: span lifecycles the analyzer must flag.
//
// The early-return leak below is the genuine finding this PR fixed in
// cmd/certify/main.go: the root span was never ended on any of the
// command's thirteen error-return paths, so -trace reported a
// forever-running phase.
package fixture

import (
	"context"
	"errors"

	"repro/internal/obs"
)

var errFail = errors.New("fail")

func leakOnEarlyReturn(fail bool) error {
	ctx, sp := obs.Start(context.Background(), "phase")
	_ = ctx
	if fail {
		return errFail // want "span sp from obs.Start is not ended on this path"
	}
	sp.End()
	return nil
}

func leakOnFallThrough() {
	_, sp := obs.Start(context.Background(), "phase")
	sp.SetAttr("n", 1)
} // want "span sp from obs.Start is not ended on this path"

func discardedSpan() {
	_, _ = obs.Start(context.Background(), "phase") // want "span from obs.Start is discarded"
}

func endOnlyInOneBranch(ok bool) {
	_, sp := obs.Start(context.Background(), "phase")
	if ok {
		sp.End()
	}
} // want "span sp from obs.Start is not ended on this path"

func leakInsideLiteral() func() {
	return func() {
		_, sp := obs.Start(context.Background(), "phase")
		_ = sp
	} // want "span sp from obs.Start is not ended on this path"
}

func leakWhenSwitchHasNoDefault(mode int) {
	_, sp := obs.Start(context.Background(), "phase")
	switch mode {
	case 0:
		sp.End()
	}
} // want "span sp from obs.Start is not ended on this path"

func endInGoroutineDoesNotCount() {
	_, sp := obs.Start(context.Background(), "phase")
	go func() {
		sp.End() // runs asynchronously: this scope's paths stay uncovered
	}()
} // want "span sp from obs.Start is not ended on this path"
