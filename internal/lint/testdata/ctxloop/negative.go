// Negative ctxloop fixtures: every probe shape the analyzer accepts,
// plus unannotated functions, which may loop however they like.
package fixture

import "context"

// Unannotated: no directive, no requirement.
func coldLoop(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// The canonical repo shape: an amortized fault.Checkpoint probed once
// per round (runHeuristicSparse, the EMSO DP, the netsim driver).
//
//certlint:longrun
func longrunWithCheckpoint(cp *Checkpoint, left int) (int, error) {
	total := 0
	for left > 0 {
		if err := cp.Check(); err != nil {
			return 0, err
		}
		total += left
		left--
	}
	return total, nil
}

// Now (the unamortized probe) counts too — the coarse-boundary variant.
//
//certlint:longrun
func longrunWithNow(cp *Checkpoint, xs []int) error {
	for range xs {
		if err := cp.Now(); err != nil {
			return err
		}
	}
	return nil
}

// Polling ctx.Err directly is the probe shape of code that predates the
// checkpoint helper.
//
//certlint:longrun
func longrunWithCtxErr(ctx context.Context, xs []int) error {
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return err
		}
		_ = x
	}
	return nil
}

// A ctx.Done select is the channel-shaped probe (the netsim barrier).
//
//certlint:longrun
func longrunWithDone(ctx context.Context, work chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case x, ok := <-work:
			if !ok {
				return total
			}
			total += x
		}
	}
}

// A probe in an inner loop covers the outermost verdict: the outer
// iteration cannot outrun the inner loop that polls.
//
//certlint:longrun
func longrunInnerProbe(cp *Checkpoint, rows [][]int) (int, error) {
	total := 0
	for _, row := range rows {
		for _, x := range row {
			if err := cp.Check(); err != nil {
				return 0, err
			}
			total += x
		}
	}
	return total, nil
}
