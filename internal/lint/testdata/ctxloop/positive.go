// Positive ctxloop fixtures: each function below reproduces a loop shape
// this PR made cancellable in the real heuristics — unbounded work with
// no way to notice a dead client.
package fixture

import "context"

// Checkpoint mimics fault.Checkpoint: the analyzer recognizes Check/Now
// on any named Checkpoint type, so the fixture stays self-contained.
type Checkpoint struct{}

func (c *Checkpoint) Check() error { return nil }
func (c *Checkpoint) Now() error   { return nil }

// Mirrors the pre-fix elimination driver: the round loop runs until the
// graph is consumed and never looks up.
//
//certlint:longrun
func longrunNoProbe(left int) int {
	total := 0
	for left > 0 { // want "no cancellation checkpoint"
		total += left
		left--
	}
	return total
}

// A range loop is just as flaggable as a for loop.
//
//certlint:longrun
func longrunRangeNoProbe(xs []int) int {
	total := 0
	for _, x := range xs { // want "no cancellation checkpoint"
		total += x
	}
	return total
}

// Holding a context without polling it is not a checkpoint: the loop
// below carries ctx but never calls Err or Done.
//
//certlint:longrun
func longrunIgnoresCtx(ctx context.Context, xs []int) int {
	_ = ctx
	total := 0
	for _, x := range xs { // want "no cancellation checkpoint"
		total += x
	}
	return total
}

// A probe parked in a function literal does not cover the declaration's
// own loop — the literal runs on someone else's schedule.
//
//certlint:longrun
func longrunProbeInClosure(ctx context.Context, xs []int) func() error {
	for range xs { // want "no cancellation checkpoint"
	}
	return func() error { return ctx.Err() }
}

// Even inside the loop, a probe captured by a literal belongs to the
// literal's caller (here a deferred cleanup), not to the iteration.
//
//certlint:longrun
func longrunClosureInsideLoop(ctx context.Context, xs []int) {
	for range xs { // want "no cancellation checkpoint"
		defer func() { _ = ctx.Err() }()
	}
}
