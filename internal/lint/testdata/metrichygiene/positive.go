// Positive metrichygiene fixtures: names, kinds and labels the analyzer
// must flag. The fmt.Sprintf label value is the cardinality trap the
// cmd/certserver handlers avoid with a fixed path vocabulary.
package fixture

import (
	"fmt"

	"repro/internal/obs"
)

func metricName(which string) string { return "dynamic_" + which }

func badRegistrations(reg *obs.Registry, which string, jobs int) {
	reg.Counter(metricName(which), "computed name") // want "must be a compile-time constant"
	reg.Counter("badName_total", "camel case")      // want "not snake_case"
	reg.Counter("requests_count", "bad unit")       // want "counter name .* must end in _total, _bits, _bytes"
	reg.Histogram("request_latency", "bad unit")    // want "histogram name .* must end in _seconds"
	reg.Gauge("inflight_total", "counter suffix")   // want "gauge name .* ends in _total, which marks a counter"
	reg.Counter("exchange_round_bits", "first use ok")
	reg.Gauge("exchange_round_bits", "kind clash") // want "one name, one kind"

	reg.Counter("jobs_total", "ok", obs.L(metricName(which), "x")) // want "label key must be a compile-time constant"
	reg.Counter("jobs_total", "ok", obs.L("Status-Code", "x"))     // want "label key .* is not snake_case"
	reg.Counter("jobs_total", "ok",
		obs.L("job", fmt.Sprintf("job-%d", jobs))) // want "unbounded-cardinality risk"
}
