// Negative metrichygiene fixtures: the registration idioms the repo's
// metric surfaces use (internal/engine metric constants, the
// cmd/certserver fixed path vocabulary, strconv for bounded values).
package fixture

import (
	"strconv"

	"repro/internal/obs"
)

// The internal/engine shape: names as package-level constants.
const (
	metricJobs         = "fixture_jobs_total"
	metricPhaseSeconds = "fixture_phase_seconds"
)

func goodRegistrations(reg *obs.Registry, status int) {
	reg.Counter(metricJobs, "jobs processed", obs.L("outcome", "accepted"))
	reg.Histogram(metricPhaseSeconds, "phase latency", obs.L("phase", "prove"))
	reg.Counter("round_bits", "certificate bits exchanged")
	reg.Counter("payload_bytes", "payload bytes written")
	reg.Gauge("inflight_rounds", "rounds in flight")
	// Bounded label values computed without fmt (the cmd/certserver
	// status-code shape) are fine.
	reg.Counter("http_responses_total", "responses", obs.L("status", strconv.Itoa(status)))
}
