// A deliberately type-broken fixture: the loader must surface the type
// error instead of analyzing garbage.
package fixture

func undefinedName() int {
	return notDeclared
}
