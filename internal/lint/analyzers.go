package lint

// All returns a fresh instance of every analyzer in the suite, in
// deterministic order. Fresh instances matter: analyzers may carry
// cross-package state (metrichygiene's name/kind table), so sharing a
// set across two runs would leak findings between them.
func All() []*Analyzer {
	return []*Analyzer{
		CtxLoop(),
		HotPath(),
		MetricHygiene(),
		PoolDiscipline(),
		SpanEnd(),
		WireDeterminism(),
	}
}

// ByName returns the named analyzers out of a fresh All() set; unknown
// names are reported by the caller (the returned slice is nil if any
// name is unknown, with the bad name second).
func ByName(names []string) ([]*Analyzer, string) {
	all := All()
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, n
		}
		out = append(out, a)
	}
	return out, ""
}
