package lint

import (
	"go/ast"
)

// SpanEnd returns the analyzer enforcing the span lifecycle of the PR6
// tracing layer: every span returned by obs.Start must have End() called
// on every return path (normally `defer sp.End()` or End inside a
// deferred closure). A span that is never ended reports a forever-running
// phase in the request tree and skews the phase histograms its duration
// feeds.
func SpanEnd() *Analyzer {
	a := &Analyzer{
		Name: "spanend",
		Doc: "every obs.Start span must reach End() on all return paths, " +
			"normally via defer; an un-ended span corrupts the phase tree and " +
			"the latency histograms fed from its duration",
	}
	a.Run = func(pass *Pass) error {
		funcBodies(pass.Pkg, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkSpanScope(pass, body)
		})
		return nil
	}
	return a
}

func checkSpanScope(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !pass.calleeIs(call, obsPath+".Start") {
			return true
		}
		id, ok := as.Lhs[1].(*ast.Ident)
		if !ok || id.Name == "_" {
			pass.Reportf(call.Pos(), "span from obs.Start is discarded: it can never be ended")
			return true
		}
		obj := pass.Pkg.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.Pkg.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		isEnd := func(c *ast.CallExpr) bool {
			if !pass.calleeIs(c, "(*"+obsPath+".Span).End") {
				return false
			}
			sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
			return ok && usesObject(pass.Pkg, sel.X, obj)
		}
		for _, ret := range uncoveredReturns(body, call.Pos(), isEnd) {
			pass.Reportf(ret, "span %s from obs.Start is not ended on this path (missing %s.End(), normally deferred)", id.Name, id.Name)
		}
		return true
	})
}
