package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// moduleLoader returns a loader rooted at the repo's module (two levels
// up from this package).
func moduleLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := moduleLoader(t).Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// expectation is one `// want "regexp"` comment: a finding matching re
// must be reported on exactly that file and line.
type expectation struct {
	file string
	line int
	pat  string
	re   *regexp.Regexp
	hit  bool
}

func wantExpectations(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pat, err := strconv.Unquote(strings.TrimSpace(rest))
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pat: pat, re: re})
			}
		}
	}
	return out
}

// runWantTest runs one analyzer over testdata/<name> and diffs its
// findings against the fixture's want comments: every finding must match
// a want on its line, and every want must be matched by a finding.
func runWantTest(t *testing.T, analyzer string) {
	t.Helper()
	pkg := loadFixture(t, analyzer)
	want := wantExpectations(t, pkg)
	analyzers, bad := ByName([]string{analyzer})
	if analyzers == nil {
		t.Fatalf("unknown analyzer %q", bad)
	}
	r := NewRunner(analyzers)
	if err := r.Package(pkg); err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Diagnostics() {
		matched := false
		for _, w := range want {
			if w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range want {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.pat)
		}
	}
}

func TestWireDeterminism(t *testing.T) { runWantTest(t, "wiredeterminism") }
func TestPoolDiscipline(t *testing.T)  { runWantTest(t, "pooldiscipline") }
func TestMetricHygiene(t *testing.T)   { runWantTest(t, "metrichygiene") }
func TestSpanEnd(t *testing.T)         { runWantTest(t, "spanend") }
func TestHotPath(t *testing.T)         { runWantTest(t, "hotpath") }
func TestCtxLoop(t *testing.T)         { runWantTest(t, "ctxloop") }

// TestIgnoreDirectives runs the full suite over the suppression fixture:
// the reasoned ignore silences its leak, the bare ignore suppresses
// nothing and is itself reported.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadFixture(t, "ignore")
	r := NewRunner(All())
	if err := r.Package(pkg); err != nil {
		t.Fatal(err)
	}
	ds := r.Diagnostics()
	if len(ds) != 2 {
		t.Fatalf("want exactly 2 findings (bare directive + unsuppressed leak), got %d:\n%v", len(ds), ds)
	}
	if ds[0].Analyzer != "certlint" || !strings.Contains(ds[0].Message, "needs a reason") {
		t.Errorf("first finding should be the bare directive, got %s", ds[0])
	}
	if ds[1].Analyzer != "pooldiscipline" {
		t.Errorf("second finding should be the unsuppressed leak, got %s", ds[1])
	}
	for _, d := range ds {
		if strings.Contains(d.Message, "point of the test") {
			t.Errorf("suppressed finding leaked through: %s", d)
		}
	}
	// The suppressed leak's line must not appear.
	for _, d := range ds {
		if d.Analyzer == "pooldiscipline" && d.Position.Line < 30 {
			t.Errorf("finding inside the suppressed function: %s", d)
		}
	}
}

// TestRepoIsClean is the self-test the CI gate relies on: the whole
// module must lint clean with the committed annotations in place.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads every module package from source")
	}
	l := moduleLoader(t)
	dirs, err := ModulePackages(l.ModuleDir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(All())
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		if err := r.Package(pkg); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range r.Diagnostics() {
		t.Errorf("repo finding: %s", d)
	}
}

func TestByName(t *testing.T) {
	if as, bad := ByName([]string{"spanend", "hotpath"}); as == nil || len(as) != 2 || bad != "" {
		t.Fatalf("ByName(spanend, hotpath) = %v, %q", as, bad)
	}
	if as, bad := ByName([]string{"spanend", "nosuch"}); as != nil || bad != "nosuch" {
		t.Fatalf("ByName with unknown name = %v, %q", as, bad)
	}
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing metadata", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	if len(names) != 6 {
		t.Errorf("want 6 analyzers, got %d", len(names))
	}
}

func TestOutputFormats(t *testing.T) {
	pkg := loadFixture(t, "hotpath")
	r := NewRunner(All())
	if err := r.Package(pkg); err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	r.WriteText(&text)
	if !strings.Contains(text.String(), "hotpath/positive.go:") || !strings.Contains(text.String(), ": hotpath: ") {
		t.Errorf("text output missing file:line: analyzer: message form:\n%s", text.String())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Findings []Diagnostic `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("certlint JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(rep.Findings) == 0 {
		t.Fatal("expected findings from the hotpath fixture")
	}
	for _, f := range rep.Findings {
		if f.Analyzer == "" || f.Position.Filename == "" || f.Position.Line == 0 || f.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
	}

	// A clean run must still emit a findings array, not null.
	var empty bytes.Buffer
	if err := NewRunner(All()).WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), `"findings": []`) {
		t.Errorf("clean JSON report should hold an empty array:\n%s", empty.String())
	}
}

func TestLoaderErrors(t *testing.T) {
	if _, err := NewLoader(t.TempDir()); err == nil {
		t.Error("NewLoader without go.mod should fail")
	}
	l := moduleLoader(t)
	if _, err := l.Load(filepath.Join(t.TempDir(), "elsewhere")); err == nil {
		t.Error("loading a directory outside the module should fail")
	}
	if _, err := l.Load(filepath.Join("testdata", "nosuchdir")); err == nil {
		t.Error("loading a missing directory should fail")
	}
	if _, err := l.Load(filepath.Join("testdata", "broken")); err == nil {
		t.Error("loading a package with type errors should fail")
	}
	// Load results (and failures) are cached per import path.
	if _, err := l.Load(filepath.Join("testdata", "broken")); err == nil {
		t.Error("cached load of a broken package should fail again")
	}
	pkg1, err := l.Load(filepath.Join("testdata", "hotpath"))
	if err != nil {
		t.Fatal(err)
	}
	pkg2, err := l.Load(filepath.Join("testdata", "hotpath"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg1 != pkg2 {
		t.Error("repeated loads should return the cached package")
	}
}

func TestModulePackages(t *testing.T) {
	l := moduleLoader(t)
	dirs, err := ModulePackages(l.ModuleDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("expected the module's packages, got %d: %v", len(dirs), dirs)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("testdata directory leaked into package list: %s", d)
		}
	}
	for i := 1; i < len(dirs); i++ {
		if dirs[i-1] >= dirs[i] {
			t.Errorf("package list not sorted/unique at %q >= %q", dirs[i-1], dirs[i])
		}
	}
}

func TestPassAccessors(t *testing.T) {
	pkg := loadFixture(t, "hotpath")
	var ds []Diagnostic
	pass := &Pass{Analyzer: &Analyzer{Name: "demo"}, Pkg: pkg, diags: &ds}
	if pass.Fset() != pkg.Fset {
		t.Error("Fset should return the package's file set")
	}
	if pass.TypesInfo() != pkg.TypesInfo {
		t.Error("TypesInfo should return the package's type info")
	}
	pass.Reportf(pkg.Files[0].Pos(), "count=%d", 7)
	if len(ds) != 1 {
		t.Fatalf("Reportf recorded %d diagnostics, want 1", len(ds))
	}
	got := ds[0].String()
	if !strings.Contains(got, "demo: count=7") || !strings.Contains(got, ".go:") {
		t.Errorf("Diagnostic.String = %q, want pos + analyzer + message", got)
	}
}

func TestModuleImporter(t *testing.T) {
	l := moduleLoader(t)
	m := &moduleImporter{l: l, dir: l.ModuleDir}
	pkg, err := m.Import("repro/internal/graph")
	if err != nil {
		t.Fatalf("importing a module package: %v", err)
	}
	if pkg.Path() != "repro/internal/graph" {
		t.Errorf("imported path = %q", pkg.Path())
	}
	std, err := m.Import("sort")
	if err != nil {
		t.Fatalf("importing a stdlib package: %v", err)
	}
	if std.Path() != "sort" {
		t.Errorf("stdlib path = %q", std.Path())
	}
	if _, err := m.Import("repro/internal/lint/testdata/broken"); err == nil {
		t.Error("importing a type-broken module package should fail")
	}
}
