package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WireDeterminism returns the analyzer enforcing byte-deterministic
// certificate and wire encoding: PR5's differential tests assert
// byte-identical witnesses across prover configurations, and one `range`
// over a map in an encode path silently breaks that — Go randomizes map
// iteration order on purpose, so the bytes change between runs.
//
// Encode paths are the functions whose name starts with Encode or
// Marshal, ends in ToJSON or ToStrings, or carries a //certlint:wire
// annotation, plus everything they reach through same-package calls.
// Inside them, ranging over a map is flagged unless the loop body only
// collects keys into a slice (the collect-then-sort idiom: every
// statement is an append).
func WireDeterminism() *Analyzer {
	a := &Analyzer{
		Name: "wiredeterminism",
		Doc: "flags range-over-map in wire/certificate encode paths: map iteration " +
			"order is randomized, so encoders iterating maps emit nondeterministic " +
			"bytes; collect keys and sort, or iterate a slice",
	}
	a.Run = func(pass *Pass) error {
		decls := map[*types.Func]*ast.FuncDecl{}
		var roots []*types.Func
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pass.Pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[fn] = fd
				if isEncodeRoot(fd) {
					roots = append(roots, fn)
				}
			}
		}
		reachable := map[*types.Func]bool{}
		var mark func(fn *types.Func)
		mark = func(fn *types.Func) {
			if reachable[fn] {
				return
			}
			reachable[fn] = true
			fd := decls[fn]
			if fd == nil {
				return
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := pass.Callee(call); callee != nil {
					if _, local := decls[callee]; local {
						mark(callee)
					}
				}
				return true
			})
		}
		for _, fn := range roots {
			mark(fn)
		}
		for fn := range reachable {
			fd := decls[fn]
			if fd == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if keyCollectOnly(pass, rng) {
					return true
				}
				pass.Reportf(rng.Pos(),
					"range over map in encode path %s: iteration order is nondeterministic; collect keys and sort first",
					fn.Name())
				return true
			})
		}
		return nil
	}
	return a
}

// isEncodeRoot reports whether fd is an encode-path entry point.
func isEncodeRoot(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "Marshal") ||
		strings.HasSuffix(name, "ToJSON") || strings.HasSuffix(name, "ToStrings") {
		return true
	}
	return hasDirective(fd, "wire")
}

// keyCollectOnly reports whether the loop is the benign prefix of the
// collect-then-sort idiom: every statement appends exactly the range KEY
// to a slice. Appending values (or anything derived from them) bakes map
// order into the collected data, so only the keys-for-sorting shape is
// exempt — the subsequent sort is what restores determinism, and every
// real encoder in this module has one.
func keyCollectOnly(pass *Pass, rng *ast.RangeStmt) bool {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	key := pass.Pkg.TypesInfo.Defs[keyID]
	if key == nil {
		return false
	}
	body := rng.Body
	if len(body.List) == 0 {
		return false
	}
	for _, s := range body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			return false
		}
		arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
		if !ok || pass.Pkg.TypesInfo.Uses[arg] != key {
			return false
		}
	}
	return true
}
