// Package lint is the repo's project-invariant static-analysis engine:
// a stdlib-only analyzer framework (go/parser + go/types with the source
// importer — no golang.org/x/tools dependency, matching the module's
// zero-dependency rule) plus the analyzers that compile this repo's
// engineering invariants into machine checks, the same move the paper
// makes for graph properties: state the invariant once, have a checker
// enforce it everywhere, locally.
//
// The analyzer interface is modeled on golang.org/x/tools/go/analysis:
// an Analyzer has a Name, a Doc string and a Run function receiving a
// Pass; diagnostics carry file:line positions. cmd/certlint drives the
// analyzers over every package of the module and exits non-zero when any
// diagnostic survives suppression.
//
// A finding is suppressed by a `//certlint:ignore <reason>` comment on
// the flagged line or the line directly above it. The reason is
// mandatory: a bare ignore suppresses nothing and is itself reported, so
// every silenced finding documents why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one invariant checker. Analyzers may keep state across
// packages (e.g. metrichygiene's cross-package metric-name table), so a
// fresh instance set — see All — must be used per run.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph invariant statement shown by -list.
	Doc string
	// Run checks one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the position set the package was parsed with.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypesInfo returns the package's type-checking results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.TypesInfo }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, JSON-shaped for certlint -json.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.TypesInfo.TypeOf(e) }

// Callee resolves the static callee of a call expression: a declared
// function or method, or nil for calls through function values, builtins
// and type conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Pkg.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if sel := p.Pkg.TypesInfo.Selections[fun]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = p.Pkg.TypesInfo.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// calleeIs reports whether call statically resolves to the function or
// method whose FullName (e.g. "(*sync.Pool).Get", "fmt.Errorf",
// "repro/internal/obs.Start") is fullName.
func (p *Pass) calleeIs(call *ast.CallExpr, fullName string) bool {
	fn := p.Callee(call)
	return fn != nil && fn.FullName() == fullName
}

// calleePackage returns the package path of the call's static callee, or
// "" when the callee is not a declared function (builtins, conversions,
// function values).
func (p *Pass) calleePackage(call *ast.CallExpr) string {
	fn := p.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
