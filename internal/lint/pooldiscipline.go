package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolGetName and poolPutName are the sync.Pool accessors the analyzer
// tracks.
const (
	poolGetName = "(*sync.Pool).Get"
	poolPutName = "(*sync.Pool).Put"
)

// PoolDiscipline returns the analyzer enforcing the scratch-buffer
// contract of the PR2/PR5 sync.Pool paths: every Pool.Get must reach a
// Put on every return path (normally `defer pool.Put(x)` or a deferred
// release wrapper), and the pooled object must not escape the function
// through a return value or a store into a non-local — an escaped
// scratch aliases the next Get and corrupts a concurrent caller.
func PoolDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "pooldiscipline",
		Doc: "every sync.Pool.Get must reach a Put on all return paths and the " +
			"pooled object must not escape via return value or non-local store; " +
			"a leaked scratch defeats the pool, an escaped one aliases the next Get",
	}
	a.Run = func(pass *Pass) error {
		releasers := releaseWrappers(pass)
		getters := getterWrappers(pass)
		funcBodies(pass.Pkg, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			if lit == nil && decl != nil {
				if fn, ok := pass.Pkg.TypesInfo.Defs[decl.Name].(*types.Func); ok && getters[fn] {
					// A getter wrapper's whole point is handing the pooled
					// object to its caller; the discipline transfers to the
					// call sites, which are checked as acquisitions below.
					return
				}
			}
			checkPoolScope(pass, releasers, getters, body)
		})
		return nil
	}
	return a
}

// getterWrappers finds same-package functions that hand a freshly
// Got pooled object to their caller — netsim's
// `func (e *Engine) getScratch() *shardScratch` shape. Calling one is an
// acquisition; the wrapper body itself is exempt from the escape checks.
func getterWrappers(pass *Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Results == nil {
				continue
			}
			fn, ok := pass.Pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			// Collect the objects bound to Pool.Get results in this body.
			pooled := map[types.Object]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, rhs := range as.Rhs {
					call := getCall(rhs)
					if call == nil || !pass.calleeIs(call, poolGetName) || i >= len(as.Lhs) {
						continue
					}
					if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Pkg.TypesInfo.Defs[id]; obj != nil {
							pooled[obj] = true
						}
					}
				}
				return true
			})
			// A wrapper returns one of them (or a Get call directly).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					if call := getCall(res); call != nil && pass.calleeIs(call, poolGetName) {
						out[fn] = true
					}
					if id, ok := ast.Unparen(res).(*ast.Ident); ok && pooled[pass.Pkg.TypesInfo.Uses[id]] {
						out[fn] = true
					}
				}
				return true
			})
		}
	}
	return out
}

// releaseWrappers finds same-package functions whose body contains a
// Pool.Put: passing the pooled object to one of these (as receiver or
// argument) counts as releasing it — the emso scratch's
// `defer sc.release()` shape.
func releaseWrappers(pass *Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && pass.calleeIs(call, poolPutName) {
					out[fn] = true
					return false
				}
				return true
			})
		}
	}
	return out
}

// checkPoolScope checks one function scope for Get/Put discipline. An
// acquisition is a direct Pool.Get or a call to a same-package getter
// wrapper.
func checkPoolScope(pass *Pass, releasers, getters map[*types.Func]bool, body *ast.BlockStmt) {
	isAcquire := func(call *ast.CallExpr) bool {
		if call == nil {
			return false
		}
		if pass.calleeIs(call, poolGetName) {
			return true
		}
		fn := pass.Callee(call)
		return fn != nil && getters[fn]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Literals are their own scopes via funcBodies; do not
			// attribute their Gets to the enclosing function.
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call := getCall(rhs)
			if !isAcquire(call) {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				pass.Reportf(call.Pos(), "sync.Pool.Get result is discarded: the object can never be Put back")
				continue
			}
			obj := pass.Pkg.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.Pkg.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			checkPooledVar(pass, releasers, body, call, obj, id.Name)
		}
		return true
	})
}

// getCall unwraps `pool.Get()` and `pool.Get().(*T)` to the call.
func getCall(e ast.Expr) *ast.CallExpr {
	switch t := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return t
	case *ast.TypeAssertExpr:
		if call, ok := ast.Unparen(t.X).(*ast.CallExpr); ok {
			return call
		}
	}
	return nil
}

// checkPooledVar enforces release-on-all-paths and no-escape for one
// pooled variable.
func checkPooledVar(pass *Pass, releasers map[*types.Func]bool, body *ast.BlockStmt, get *ast.CallExpr, obj types.Object, name string) {
	isRelease := func(call *ast.CallExpr) bool {
		fn := pass.Callee(call)
		if fn == nil {
			return false
		}
		if fn.FullName() == poolPutName {
			for _, arg := range call.Args {
				if usesObject(pass.Pkg, arg, obj) {
					return true
				}
			}
			return false
		}
		if !releasers[fn] {
			return false
		}
		// Receiver or argument mentions the pooled object.
		if usesObject(pass.Pkg, call, obj) {
			return true
		}
		return false
	}
	for _, ret := range uncoveredReturns(body, get.Pos(), isRelease) {
		pass.Reportf(ret, "pooled %s from sync.Pool.Get is not returned to the pool on this path (missing Put or deferred release)", name)
	}
	// Escape checks: returning the object, or storing it into something
	// that outlives the call.
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range t.Results {
				if aliasesObject(pass, res, obj) {
					pass.Reportf(t.Pos(), "pooled %s escapes via return value: the caller would alias the next Get", name)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range t.Rhs {
				if !isBareObject(pass, rhs, obj) || i >= len(t.Lhs) {
					continue
				}
				if storeEscapes(pass, t.Lhs[i], obj) {
					pass.Reportf(t.Pos(), "pooled %s escapes via store into a non-local: the location outlives the call", name)
				}
			}
		}
		return true
	})
}

// aliasesObject reports whether e is the pooled object or a view into
// its memory: the bare variable, a field, an element, a slice of a field,
// or an address of any of those. Values merely derived from the object —
// len(sc.views), sc.count — are copies and do not alias, so a call
// boundary ends the chain.
func aliasesObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	base := ast.Unparen(e)
	for {
		switch t := base.(type) {
		case *ast.SelectorExpr:
			base = ast.Unparen(t.X)
			continue
		case *ast.IndexExpr:
			base = ast.Unparen(t.X)
			continue
		case *ast.SliceExpr:
			base = ast.Unparen(t.X)
			continue
		case *ast.StarExpr:
			base = ast.Unparen(t.X)
			continue
		case *ast.UnaryExpr:
			if t.Op != token.AND {
				return false
			}
			base = ast.Unparen(t.X)
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	return pass.Pkg.TypesInfo.Uses[id] == obj || pass.Pkg.TypesInfo.Defs[id] == obj
}

// isBareObject reports whether e is exactly the pooled variable (not a
// field read or slice of it — copying data out is fine).
func isBareObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && (pass.Pkg.TypesInfo.Uses[id] == obj || pass.Pkg.TypesInfo.Defs[id] == obj)
}

// storeEscapes reports whether assigning the pooled object to lhs lets it
// outlive the call: a store into a field or element of anything other
// than a function-local variable (package-level variables, parameters,
// receivers — all visible after return). Stores into fields of the
// pooled object itself, or of other locals, stay function-local.
func storeEscapes(pass *Pass, lhs ast.Expr, obj types.Object) bool {
	base := ast.Unparen(lhs)
	for {
		switch t := base.(type) {
		case *ast.SelectorExpr:
			base = ast.Unparen(t.X)
			continue
		case *ast.IndexExpr:
			base = ast.Unparen(t.X)
			continue
		case *ast.StarExpr:
			base = ast.Unparen(t.X)
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return true // stores through arbitrary expressions: assume escape
	}
	if id.Name == "_" {
		return false
	}
	target := pass.Pkg.TypesInfo.Uses[id]
	if target == nil {
		target = pass.Pkg.TypesInfo.Defs[id]
	}
	if target == obj {
		return false // sc.field = x on the pooled object itself
	}
	v, ok := target.(*types.Var)
	if !ok {
		return true
	}
	if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
		return true // package-level variable
	}
	if id == ast.Expr(lhs) {
		// Plain rebinding `x = sc` of a local: tracked no further, allowed
		// only for locals; parameters are locals too in Go's model, and a
		// caller cannot see a parameter reassignment.
		return false
	}
	// A store into a field/element of a parameter or receiver escapes:
	// the caller holds the base.
	if isParamOrReceiver(pass, v) {
		return true
	}
	return false
}

// isParamOrReceiver reports whether v is declared in a function signature
// rather than the body.
func isParamOrReceiver(pass *Pass, v *types.Var) bool {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv != nil {
				for _, fld := range fd.Recv.List {
					for _, nm := range fld.Names {
						if pass.Pkg.TypesInfo.Defs[nm] == types.Object(v) {
							return true
						}
					}
				}
			}
			if fd.Type.Params != nil {
				for _, fld := range fd.Type.Params.List {
					for _, nm := range fld.Names {
						if pass.Pkg.TypesInfo.Defs[nm] == types.Object(v) {
							return true
						}
					}
				}
			}
		}
	}
	return false
}
