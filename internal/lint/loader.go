package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/wire").
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions every file in the loader's shared set.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments, sorted by
	// file name so analysis order is deterministic.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records types, definitions, uses and selections.
	TypesInfo *types.Info
}

// Loader parses and type-checks module packages from source. Imports of
// module-internal packages resolve recursively through the loader itself;
// everything else resolves through the standard library's source
// importer, so the whole pipeline needs no export data and no
// dependencies outside the standard library.
type Loader struct {
	// ModuleDir is the module root (the directory holding go.mod).
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package
	errs map[string]error // import path -> first load failure
}

// NewLoader returns a loader rooted at moduleDir, reading the module path
// from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", moduleDir)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       map[string]*Package{},
		errs:       map[string]error{},
	}, nil
}

// Fset returns the loader's shared position set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks the package in dir (which must live under
// the module root). Repeated loads of the same package are cached.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path)
}

// loadPath loads a package by import path (module-internal paths only).
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	pkg, err := l.load(path)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) load(path string) (*Package, error) {
	rel := strings.TrimPrefix(path, l.ModulePath)
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &moduleImporter{l: l, dir: dir},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// moduleImporter routes module-internal import paths back through the
// loader and everything else to the standard library source importer.
type moduleImporter struct {
	l   *Loader
	dir string
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.dir, 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == m.l.ModulePath || strings.HasPrefix(path, m.l.ModulePath+"/") {
		pkg, err := m.l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.l.std.ImportFrom(path, srcDir, mode)
}

// ModulePackages lists every package directory under root (relative or
// absolute), skipping testdata, hidden directories and directories with
// no non-test Go files. Paths come back sorted.
func ModulePackages(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if n == "testdata" || (strings.HasPrefix(n, ".") && p != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}
