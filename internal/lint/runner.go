package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"io"
	"sort"
	"strings"
)

// ignorePrefix is the suppression directive: `//certlint:ignore <reason>`
// on the flagged line, or the line directly above it, silences a finding.
const ignorePrefix = "//certlint:ignore"

// Runner drives a set of analyzers over loaded packages and owns the
// collected diagnostics.
type Runner struct {
	Analyzers []*Analyzer

	diags []Diagnostic
}

// NewRunner returns a runner over the given analyzers (All() for the full
// suite).
func NewRunner(analyzers []*Analyzer) *Runner {
	return &Runner{Analyzers: analyzers}
}

// Package runs every analyzer over pkg, applying ignore directives.
// Malformed directives (no reason) are themselves reported.
func (r *Runner) Package(pkg *Package) error {
	ignored, bad := ignoreLines(pkg)
	for _, d := range bad {
		r.diags = append(r.diags, d)
	}
	start := len(r.diags)
	for _, a := range r.Analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &r.diags}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	kept := r.diags[:start]
	for _, d := range r.diags[start:] {
		key := d.Position.Filename
		if ignored[lineKey{key, d.Position.Line}] || ignored[lineKey{key, d.Position.Line - 1}] {
			continue
		}
		kept = append(kept, d)
	}
	r.diags = kept
	return nil
}

// Diagnostics returns every surviving finding, sorted by position then
// analyzer name.
func (r *Runner) Diagnostics() []Diagnostic {
	sort.SliceStable(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return r.diags
}

// WriteText renders one finding per line in file:line:col form.
func (r *Runner) WriteText(w io.Writer) {
	for _, d := range r.Diagnostics() {
		fmt.Fprintln(w, d.String())
	}
}

// jsonReport is the certlint -json document.
type jsonReport struct {
	Findings []Diagnostic `json:"findings"`
}

// WriteJSON renders the findings as one JSON document (an empty findings
// array when the run is clean).
func (r *Runner) WriteJSON(w io.Writer) error {
	ds := r.Diagnostics()
	if ds == nil {
		ds = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Findings: ds})
}

type lineKey struct {
	file string
	line int
}

// ignoreLines collects the lines carrying well-formed ignore directives
// and reports malformed ones (an ignore without a reason documents
// nothing, so it suppresses nothing).
func ignoreLines(pkg *Package) (map[lineKey]bool, []Diagnostic) {
	ignored := map[lineKey]bool{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(rest) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "certlint",
						Position: pos,
						Message:  "ignore directive needs a reason: //certlint:ignore <reason>",
					})
					continue
				}
				ignored[lineKey{pos.Filename, pos.Line}] = true
			}
		}
	}
	return ignored, bad
}

// funcBodies visits every declared function and function literal of the
// package in source order: fn is the enclosing declaration (nil for
// literals at file scope, which Go does not have, so fn is never nil in
// practice for literals — the enclosing FuncDecl is passed), and body is
// the function's own body. Used by analyzers whose invariant is scoped
// to one function at a time: each literal is analyzed as its own scope.
func funcBodies(pkg *Package, visit func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd, nil, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					visit(fd, lit, lit.Body)
				}
				return true
			})
		}
	}
}

// directives returns the certlint directive names attached to a function
// declaration's doc comment or the comments immediately preceding it,
// e.g. "hotpath" for //certlint:hotpath.
func directives(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//certlint:")
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
		if name != "" && name != "ignore" {
			out = append(out, name)
		}
	}
	return out
}

// hasDirective reports whether fd carries //certlint:<name>.
func hasDirective(fd *ast.FuncDecl, name string) bool {
	for _, d := range directives(fd) {
		if d == name {
			return true
		}
	}
	return false
}
