package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The release-path checker shared by pooldiscipline and spanend: both
// invariants have the shape "after acquiring X, a release call must be
// reached on every return path, normally via defer".
//
// The check is a structural flow analysis over the statement tree, not a
// full CFG: a single boolean state — "the resource is outstanding" —
// threads through every statement in source order. The acquire sets it,
// a release (or a deferred release) clears it, and at control-flow joins
// the branch states merge with OR (outstanding on any incoming path is
// outstanding). A return reached while outstanding is a leak; so is
// falling off the end of the scope. This correctly accepts a release in
// *both* arms of an if/else, a resource acquired and released entirely
// inside a nested block, and `defer` in all its shapes, while still
// catching the early-`return err` between acquire and release that the
// invariant exists to forbid.

// pathCheck is one uncoveredReturns run: which assignment acquires, what
// counts as a release, and the leaks found so far.
type pathCheck struct {
	acquirePos token.Pos
	isRelease  func(*ast.CallExpr) bool
	bad        []token.Pos
}

// uncoveredReturns reports the positions of return paths in body on which
// the resource acquired by the statement at acquirePos is still
// outstanding. Deferred releases count, including the
// `defer func() { ...release... }()` shape. Nested function literals are
// separate scopes: their returns are not this scope's returns and their
// releases (except deferred ones) do not run on this scope's paths. If
// the body can fall off its closing brace while outstanding, the brace
// position is reported as a leak.
func uncoveredReturns(body *ast.BlockStmt, acquirePos token.Pos, isRelease func(*ast.CallExpr) bool) []token.Pos {
	c := &pathCheck{acquirePos: acquirePos, isRelease: isRelease}
	out, term := c.block(body, false)
	if !term && out {
		c.bad = append(c.bad, body.Rbrace)
	}
	return c.bad
}

// block threads the outstanding state through a statement list.
// Statements after a terminating one are unreachable and not analyzed.
func (c *pathCheck) block(b *ast.BlockStmt, in bool) (out, term bool) {
	return c.stmtList(b.List, in)
}

func (c *pathCheck) stmtList(list []ast.Stmt, in bool) (out, term bool) {
	out = in
	for _, s := range list {
		var t bool
		out, t = c.stmt(s, out)
		if t {
			return out, true
		}
	}
	return out, false
}

// stmt analyzes one statement: given the outstanding state on entry it
// returns the state on the fall-through exit and whether the statement
// terminates the path (return, panic, infinite loop).
func (c *pathCheck) stmt(s ast.Stmt, in bool) (out, term bool) {
	switch t := s.(type) {
	case *ast.BlockStmt:
		return c.block(t, in)
	case *ast.LabeledStmt:
		return c.stmt(t.Stmt, in)
	case *ast.ReturnStmt:
		if in {
			c.bad = append(c.bad, t.Pos())
		}
		return false, true
	case *ast.BranchStmt:
		// break/continue/goto leave this construct. The state at the jump
		// is dropped rather than merged at the target — an approximation
		// that can miss a leak routed through a break, never a false leak.
		return in, true
	case *ast.DeferStmt:
		if c.isRelease(t.Call) {
			return false, false
		}
		if lit, ok := t.Call.Fun.(*ast.FuncLit); ok && c.containsRelease(lit.Body) {
			return false, false
		}
		return in, false
	case *ast.GoStmt:
		// Releases inside a spawned goroutine run asynchronously; they do
		// not cover this scope's return paths.
		return in, false
	case *ast.IfStmt:
		in = c.leafState(t.Init, in)
		bodyOut, bodyTerm := c.block(t.Body, in)
		elseOut, elseTerm := in, false
		if t.Else != nil {
			elseOut, elseTerm = c.stmt(t.Else, in)
		}
		switch {
		case bodyTerm && elseTerm:
			return false, true
		case bodyTerm:
			return elseOut, false
		case elseTerm:
			return bodyOut, false
		}
		return bodyOut || elseOut, false
	case *ast.ForStmt:
		in = c.leafState(t.Init, in)
		bodyOut, _ := c.block(t.Body, in)
		if t.Cond == nil && !hasBreak(t.Body) {
			return false, true // `for {}` never falls through
		}
		// The body may run zero times (state = in) or leave its own state.
		return in || bodyOut, false
	case *ast.RangeStmt:
		bodyOut, _ := c.block(t.Body, in)
		return in || bodyOut, false
	case *ast.SwitchStmt:
		in = c.leafState(t.Init, in)
		return c.clauses(t.Body.List, in)
	case *ast.TypeSwitchStmt:
		in = c.leafState(t.Init, in)
		return c.clauses(t.Body.List, in)
	case *ast.SelectStmt:
		return c.clauses(t.Body.List, in)
	default:
		// Leaf statements: assignments, expression statements, sends,
		// declarations. The acquire and plain releases live here.
		return c.leafState(s, in), terminalCall(s)
	}
}

// clauses merges the case/comm clauses of a switch or select: the result
// is outstanding if any non-terminating clause exits outstanding, or —
// when there is no default — if the construct can be skipped entirely
// while outstanding.
func (c *pathCheck) clauses(list []ast.Stmt, in bool) (out, term bool) {
	hasDefault := false
	allTerm := len(list) > 0
	for _, cl := range list {
		var body []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			body = cc.Body
		}
		o, t := c.stmtList(body, in)
		if !t {
			out = out || o
			allTerm = false
		}
	}
	if !hasDefault {
		out = out || in
		allTerm = false
	}
	return out, allTerm
}

// leafState applies a leaf statement (or a nil/Init statement) to the
// state: the acquiring statement sets outstanding, a statement containing
// a release clears it.
func (c *pathCheck) leafState(s ast.Stmt, in bool) bool {
	if s == nil {
		return in
	}
	if s.Pos() <= c.acquirePos && c.acquirePos < s.End() {
		in = true
	}
	if c.containsRelease(s) {
		in = false
	}
	return in
}

// containsRelease reports whether n contains a release call outside any
// nested function literal.
func (c *pathCheck) containsRelease(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && c.isRelease(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// terminalCall recognizes leaf statements control cannot flow past:
// panic, os.Exit, runtime.Goexit, log.Fatal*.
func terminalCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name == "panic"
	case *ast.SelectorExpr:
		x, ok := f.X.(*ast.Ident)
		if !ok {
			return false
		}
		full := x.Name + "." + f.Sel.Name
		return full == "os.Exit" || full == "runtime.Goexit" || strings.HasPrefix(full, "log.Fatal")
	}
	return false
}

// hasBreak reports whether body contains a break binding to the enclosing
// loop (nested loops, switches and selects consume their own breaks; a
// labeled break out of a nested construct is missed — acceptable for
// deciding whether `for {}` can fall through).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		switch t := m.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false
		case *ast.BranchStmt:
			if t.Tok == token.BREAK {
				found = true
			}
		}
		return !found
	})
	return found
}

// usesObject reports whether expr references the identifier object obj.
func usesObject(pkg *Package, expr ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
