package lint

import (
	"go/ast"
	"go/types"
)

// hotpathBannedPackages are wholesale off-limits in annotated functions:
// fmt formats through reflection and allocates; reflect is reflection.
var hotpathBannedPackages = map[string]bool{
	"fmt":     true,
	"reflect": true,
}

// HotPath returns the analyzer for //certlint:hotpath functions — the
// EMSO DP inner loops, the per-vertex verifiers and the netsim round
// body. These run once per vertex per round (or per DP state) and are
// benchmarked by the committed regression gate, so they may not call
// fmt.* or reflect.*, read time.Now, or allocate maps or closures per
// call: each of those is an allocation or a syscall the benchmarks
// exist to keep out.
func HotPath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc: "functions annotated //certlint:hotpath may not call fmt.* or " +
			"reflect.*, read time.Now, or allocate maps or closures: they run " +
			"per vertex per round and the benchmark gate holds them to zero waste",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd, "hotpath") {
					continue
				}
				checkHotPath(pass, fd)
			}
		}
		return nil
	}
	return a
}

func checkHotPath(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(t.Pos(), "hotpath %s allocates a closure per call; hoist it to a package-level function", name)
			return false
		case *ast.CompositeLit:
			if tt := pass.TypeOf(t); tt != nil {
				if _, isMap := tt.Underlying().(*types.Map); isMap {
					pass.Reportf(t.Pos(), "hotpath %s allocates a map per call; use a reusable scratch or a slice scan", name)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(t.Fun).(*ast.Ident); ok && id.Name == "make" && len(t.Args) > 0 {
				if tt := pass.TypeOf(t.Args[0]); tt != nil {
					if _, isMap := tt.Underlying().(*types.Map); isMap {
						pass.Reportf(t.Pos(), "hotpath %s allocates a map per call; use a reusable scratch or a slice scan", name)
					}
				}
			}
			fn := pass.Callee(t)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkg := fn.Pkg().Path()
			switch {
			case hotpathBannedPackages[pkg]:
				pass.Reportf(t.Pos(), "hotpath %s calls %s.%s: formatting/reflection is banned on hot paths", name, pkg, fn.Name())
			case pkg == "time" && fn.Name() == "Now":
				pass.Reportf(t.Pos(), "hotpath %s reads time.Now: clock reads are syscalls; time outside the hot loop", name)
			}
		}
		return true
	})
}
