package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoop returns the analyzer for //certlint:longrun functions — the
// elimination heuristics, the exact search, the EMSO DP passes, the
// prover/verifier walks and the netsim round driver. Their running time
// grows with the input, so every loop they run must reach a cooperative
// cancellation probe: a fault.Checkpoint Check/Now call, a ctx.Err()
// poll, or a ctx.Done() receive. A long-running loop without one holds
// its worker hostage after the client has gone — the exact bug class the
// disconnect regression test pins at the HTTP layer, caught here at the
// function that would reintroduce it.
func CtxLoop() *Analyzer {
	a := &Analyzer{
		Name: "ctxloop",
		Doc: "every loop in a //certlint:longrun function must contain a " +
			"cancellation checkpoint (Checkpoint.Check/Now, ctx.Err or " +
			"ctx.Done): unbounded work without one cannot be cancelled",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd, "longrun") {
					continue
				}
				checkCtxLoop(pass, fd)
			}
		}
		return nil
	}
	return a
}

// checkCtxLoop reports every outermost loop of fd that contains no
// cancellation probe anywhere in its subtree. Outermost is the right
// granularity: a probe in an inner loop covers the enclosing iteration
// as long as the inner loop runs, and flagging each nesting level would
// demand redundant probes the hot-loop stride already amortizes.
func checkCtxLoop(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			// A literal is its own scope; its loops belong to whatever
			// runs the literal, not to this declaration's annotation.
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if !loopHasCheckpoint(pass, n) {
				pass.Reportf(n.Pos(), "longrun %s has a loop with no cancellation checkpoint; call Checkpoint.Check (or poll ctx.Err) in its body", name)
			}
			return false // inner loops are covered by the outermost verdict
		}
		return true
	})
}

// loopHasCheckpoint reports whether any call in the loop's subtree is a
// cancellation probe.
func loopHasCheckpoint(pass *Pass, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			// A probe captured in a literal runs on the literal's
			// schedule, not the loop's — it does not make the loop stop.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isCancellationProbe(pass, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isCancellationProbe recognizes the three probe shapes: Check/Now on a
// value of a named Checkpoint type (fault.Checkpoint in real code; any
// package's Checkpoint counts so fixtures stay self-contained), and
// Err/Done on a context.Context.
func isCancellationProbe(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Check", "Now":
		t := pass.TypeOf(sel.X)
		if t == nil {
			return false
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "Checkpoint"
	case "Err", "Done":
		t := pass.TypeOf(sel.X)
		return t != nil && t.String() == "context.Context"
	}
	return false
}
