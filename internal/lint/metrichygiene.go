package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strings"
)

// obsPath is the observability core every metric flows through.
const obsPath = "repro/internal/obs"

// metricNameRe is the exposition-safe spelling: snake_case, leading
// letter. (The obs exposition writer escapes nothing in names, so
// anything outside this set corrupts /metrics.)
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metricKindSuffixes maps the registry accessor to its allowed name
// suffixes: counters count things (_total) or accumulated quantities
// (_bits, _bytes); histograms in this module are always durations in
// seconds. Gauges are free-form but must not masquerade as counters.
var metricKindSuffixes = map[string][]string{
	"Counter":   {"_total", "_bits", "_bytes"},
	"Histogram": {"_seconds"},
}

// MetricHygiene returns the analyzer guarding the PR6 metrics layer:
// metric and label names must be compile-time constants in snake_case
// with a kind-consistent unit suffix, label values must not be built
// with fmt.Sprintf (unbounded cardinality), and one metric name must
// keep one kind across the whole module — the runtime panics on a
// same-registry kind clash, but only when the second registration
// actually executes; this check is static and cross-package.
func MetricHygiene() *Analyzer {
	a := &Analyzer{
		Name: "metrichygiene",
		Doc: "obs metric/label names must be constant snake_case with a " +
			"kind-consistent suffix (_total/_bits/_bytes for counters, _seconds " +
			"for histograms), label values must not come from fmt.Sprintf, and a " +
			"metric name must keep one kind across all packages",
	}
	type firstUse struct {
		kind string
		pos  token.Position
	}
	kinds := map[string]firstUse{} // metric name -> first kind seen (across packages)
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := pass.Callee(call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
					return true
				}
				kind := fn.Name()
				if _, isAccessor := metricKindSuffixes[kind]; !isAccessor && kind != "Gauge" {
					return true
				}
				if len(call.Args) == 0 {
					return true
				}
				name, isConst := constString(pass, call.Args[0])
				if !isConst {
					pass.Reportf(call.Args[0].Pos(),
						"metric name passed to %s must be a compile-time constant", kind)
				} else {
					checkMetricName(pass, call.Args[0].Pos(), kind, name)
					if prev, seen := kinds[name]; seen && prev.kind != kind {
						pass.Reportf(call.Args[0].Pos(),
							"metric %q used as %s here but as %s at %s: one name, one kind",
							name, strings.ToLower(kind), strings.ToLower(prev.kind), prev.pos)
					} else if !seen {
						kinds[name] = firstUse{kind: kind, pos: pass.Fset().Position(call.Args[0].Pos())}
					}
				}
				for _, arg := range call.Args[1:] {
					if lcall, ok := ast.Unparen(arg).(*ast.CallExpr); ok && pass.calleeIs(lcall, obsPath+".L") {
						checkLabel(pass, lcall)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkMetricName validates spelling and the kind/unit suffix contract.
func checkMetricName(pass *Pass, pos token.Pos, kind, name string) {
	if !metricNameRe.MatchString(name) {
		pass.Reportf(pos, "metric name %q is not snake_case ([a-z][a-z0-9_]*)", name)
		return
	}
	if sufs, ok := metricKindSuffixes[kind]; ok {
		for _, s := range sufs {
			if strings.HasSuffix(name, s) {
				return
			}
		}
		pass.Reportf(pos, "%s name %q must end in %s", strings.ToLower(kind), name, strings.Join(sufs, ", "))
		return
	}
	// Gauge: anything but a counter suffix.
	if strings.HasSuffix(name, "_total") {
		pass.Reportf(pos, "gauge name %q ends in _total, which marks a counter", name)
	}
}

// checkLabel validates one obs.L(key, value) argument.
func checkLabel(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 2 {
		return
	}
	key, isConst := constString(pass, call.Args[0])
	if !isConst {
		pass.Reportf(call.Args[0].Pos(), "label key must be a compile-time constant")
	} else if !metricNameRe.MatchString(key) {
		pass.Reportf(call.Args[0].Pos(), "label key %q is not snake_case ([a-z][a-z0-9_]*)", key)
	}
	if vcall, ok := ast.Unparen(call.Args[1]).(*ast.CallExpr); ok {
		if pkg := pass.calleePackage(vcall); pkg == "fmt" {
			pass.Reportf(call.Args[1].Pos(),
				"label value built with fmt.%s: formatted values are an unbounded-cardinality risk; use a fixed vocabulary",
				pass.Callee(vcall).Name())
		}
	}
}

// constString evaluates e as a compile-time string constant.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
