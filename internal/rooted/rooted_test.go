package rooted

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graphgen"
)

func mustTree(t *testing.T, parent []int) *Tree {
	t.Helper()
	tr, err := FromParents(parent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFromParentsValidation(t *testing.T) {
	cases := []struct {
		name   string
		parent []int
	}{
		{"empty", nil},
		{"no root", []int{0, 0}},
		{"two roots", []int{-1, -1}},
		{"out of range", []int{-1, 7}},
		{"cycle", []int{-1, 2, 1}},
	}
	for _, c := range cases {
		if _, err := FromParents(c.parent); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestBasicAccessors(t *testing.T) {
	// Root 0 with children 1,2; 2 has child 3.
	tr := mustTree(t, []int{-1, 0, 0, 2})
	if tr.N() != 4 || tr.Root() != 0 {
		t.Fatalf("n=%d root=%d", tr.N(), tr.Root())
	}
	if tr.Parent(3) != 2 || tr.Parent(0) != -1 {
		t.Error("parent pointers wrong")
	}
	if len(tr.Children(0)) != 2 || len(tr.Children(3)) != 0 {
		t.Error("children lists wrong")
	}
	d := tr.Depths()
	if d[0] != 0 || d[1] != 1 || d[3] != 2 {
		t.Errorf("depths = %v", d)
	}
	if tr.Height() != 2 {
		t.Errorf("height = %d", tr.Height())
	}
}

func TestTraversalOrders(t *testing.T) {
	tr := mustTree(t, []int{-1, 0, 0, 2})
	pre := tr.PreOrder()
	if pre[0] != 0 {
		t.Errorf("preorder starts with %d", pre[0])
	}
	pos := map[int]int{}
	for i, v := range pre {
		pos[v] = i
	}
	for v := 1; v < tr.N(); v++ {
		if pos[tr.Parent(v)] > pos[v] {
			t.Errorf("preorder: parent of %d after it", v)
		}
	}
	post := tr.PostOrder()
	pos = map[int]int{}
	for i, v := range post {
		pos[v] = i
	}
	for v := 1; v < tr.N(); v++ {
		if pos[tr.Parent(v)] < pos[v] {
			t.Errorf("postorder: parent of %d before it", v)
		}
	}
}

func TestSubtreeSizesAndVertices(t *testing.T) {
	tr := mustTree(t, []int{-1, 0, 0, 2, 2})
	sizes := tr.SubtreeSizes()
	if sizes[0] != 5 || sizes[2] != 3 || sizes[1] != 1 {
		t.Errorf("sizes = %v", sizes)
	}
	sub := tr.SubtreeVertices(2)
	want := []int{2, 3, 4}
	if len(sub) != len(want) {
		t.Fatalf("subtree(2) = %v", sub)
	}
	for i := range want {
		if sub[i] != want[i] {
			t.Fatalf("subtree(2) = %v, want %v", sub, want)
		}
	}
}

func TestAncestors(t *testing.T) {
	tr := mustTree(t, []int{-1, 0, 1, 2})
	anc := tr.Ancestors(3)
	want := []int{3, 2, 1, 0}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("ancestors(3) = %v", anc)
		}
	}
	if !tr.IsAncestor(1, 3) || tr.IsAncestor(3, 1) || !tr.IsAncestor(2, 2) {
		t.Error("IsAncestor wrong")
	}
}

func TestFromGraphRoundtrip(t *testing.T) {
	g := graphgen.Path(5)
	tr, err := FromGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root() != 2 || tr.Height() != 2 {
		t.Errorf("root=%d height=%d", tr.Root(), tr.Height())
	}
	back := tr.ToGraph()
	if back.M() != g.M() {
		t.Errorf("roundtrip m = %d", back.M())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e[0], e[1]) {
			t.Errorf("lost edge %v", e)
		}
	}
}

func TestFromGraphRejectsNonTree(t *testing.T) {
	if _, err := FromGraph(graphgen.Cycle(4), 0); err == nil {
		t.Fatal("cycle accepted as tree")
	}
}

func TestAHUCodesDistinguishShapes(t *testing.T) {
	// A path of 3 rooted at end vs rooted at middle.
	end := mustTree(t, []int{-1, 0, 1})
	mid := mustTree(t, []int{-1, 0, 0})
	if end.CanonicalCode() == mid.CanonicalCode() {
		t.Error("different rooted shapes share a code")
	}
	// Child order must not matter.
	a := mustTree(t, []int{-1, 0, 0, 1}) // children of 0: {1,2}, 1 has child
	b := mustTree(t, []int{-1, 0, 0, 2}) // children of 0: {1,2}, 2 has child
	if a.CanonicalCode() != b.CanonicalCode() {
		t.Error("isomorphic rooted trees got different codes")
	}
}

func TestIsomorphic(t *testing.T) {
	a := mustTree(t, []int{-1, 0, 0, 1, 1})
	b := mustTree(t, []int{-1, 0, 0, 2, 2})
	if !Isomorphic(a, b) {
		t.Error("isomorphic trees not recognized")
	}
	c := mustTree(t, []int{-1, 0, 1, 2, 3})
	if Isomorphic(a, c) {
		t.Error("path confused with double-leaf tree")
	}
}

func TestCenters(t *testing.T) {
	cases := []struct {
		name string
		n    int
		want []int
	}{
		{"P1", 1, []int{0}},
		{"P2", 2, []int{0, 1}},
		{"P5", 5, []int{2}},
		{"P6", 6, []int{2, 3}},
	}
	for _, c := range cases {
		got, err := Centers(graphgen.Path(c.n))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("%s: centers = %v, want %v", c.name, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: centers = %v, want %v", c.name, got, c.want)
			}
		}
	}
	if _, err := Centers(graphgen.Cycle(4)); err == nil {
		t.Error("centers of a cycle accepted")
	}
}

func TestUnrootedIsomorphic(t *testing.T) {
	// The same star built with different labellings.
	a := graphgen.Star(5)
	b := graphgen.Star(5)
	ok, err := UnrootedIsomorphic(a, b)
	if err != nil || !ok {
		t.Fatalf("stars not isomorphic: %v %v", ok, err)
	}
	ok, err = UnrootedIsomorphic(graphgen.Path(5), graphgen.Star(5))
	if err != nil || ok {
		t.Fatalf("path ~ star: %v %v", ok, err)
	}
}

func TestUnrootedIsomorphismQuickRelabelled(t *testing.T) {
	// Property: relabelling a random tree preserves unrooted isomorphism.
	f := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graphgen.RandomTree(n, rng)
		// Random permutation relabelling.
		perm := rng.Perm(n)
		h := graph.New(n)
		for _, e := range g.Edges() {
			h.MustAddEdge(perm[e[0]], perm[e[1]])
		}
		ok, err := UnrootedIsomorphic(g, h)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
