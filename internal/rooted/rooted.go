// Package rooted provides rooted, unordered, unranked trees: the structures
// on which the paper's tree automata (Section 4), kernels (Section 6) and
// automorphism arguments (Section 7.2) operate.
//
// A Tree is stored as a parent array over vertices 0..N-1 with the root at
// parent -1; children are unordered. The package computes AHU canonical
// codes (isomorphism of rooted trees), tree centers (for unrooted
// isomorphism and automorphism questions), depths and subtree sizes.
package rooted

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Tree is a rooted unordered tree on vertices 0..N-1.
type Tree struct {
	parent   []int
	children [][]int
	root     int
}

// FromParents builds a tree from a parent array: exactly one entry must be
// -1 (the root) and the parent pointers must be acyclic.
func FromParents(parent []int) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, fmt.Errorf("rooted: empty tree")
	}
	t := &Tree{
		parent:   append([]int(nil), parent...),
		children: make([][]int, n),
		root:     -1,
	}
	for v, p := range parent {
		switch {
		case p == -1:
			if t.root != -1 {
				return nil, fmt.Errorf("rooted: multiple roots (%d and %d)", t.root, v)
			}
			t.root = v
		case p < 0 || p >= n:
			return nil, fmt.Errorf("rooted: parent[%d] = %d out of range", v, p)
		default:
			t.children[p] = append(t.children[p], v)
		}
	}
	if t.root == -1 {
		return nil, fmt.Errorf("rooted: no root")
	}
	// Acyclicity: every vertex must reach the root.
	seen := make([]int8, n) // 0 unknown, 1 in-progress, 2 ok
	for v := 0; v < n; v++ {
		var chain []int
		x := v
		for seen[x] == 0 && x != t.root {
			seen[x] = 1
			chain = append(chain, x)
			x = parent[x]
			if seen[x] == 1 {
				return nil, fmt.Errorf("rooted: cycle through vertex %d", x)
			}
		}
		for _, c := range chain {
			seen[c] = 2
		}
	}
	return t, nil
}

// FromGraph roots the given tree-shaped graph at the vertex index root,
// returning the rooted tree over the same indices.
func FromGraph(g *graph.Graph, root int) (*Tree, error) {
	if !g.IsTree() {
		return nil, fmt.Errorf("rooted: graph is not a tree (n=%d m=%d)", g.N(), g.M())
	}
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("rooted: root %d out of range", root)
	}
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -2
	}
	parent[root] = -1
	stack := []int{root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(u) {
			if parent[w] == -2 {
				parent[w] = u
				stack = append(stack, w)
			}
		}
	}
	return FromParents(parent)
}

// N returns the number of vertices.
func (t *Tree) N() int { return len(t.parent) }

// Root returns the root vertex.
func (t *Tree) Root() int { return t.root }

// Parent returns the parent of v (-1 for the root).
func (t *Tree) Parent(v int) int { return t.parent[v] }

// Children returns the children of v; the slice must not be modified.
func (t *Tree) Children(v int) []int { return t.children[v] }

// Parents returns a copy of the parent array.
func (t *Tree) Parents() []int { return append([]int(nil), t.parent...) }

// Depths returns the depth of every vertex (root has depth 0).
func (t *Tree) Depths() []int {
	depth := make([]int, t.N())
	for _, v := range t.PreOrder() {
		if v == t.root {
			depth[v] = 0
		} else {
			depth[v] = depth[t.parent[v]] + 1
		}
	}
	return depth
}

// Height returns the maximum depth (a single vertex has height 0).
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.Depths() {
		if d > h {
			h = d
		}
	}
	return h
}

// PreOrder returns the vertices in a preorder traversal (parents before
// children).
func (t *Tree) PreOrder() []int {
	order := make([]int, 0, t.N())
	stack := []int{t.root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		stack = append(stack, t.children[v]...)
	}
	return order
}

// PostOrder returns the vertices in a postorder traversal (children before
// parents).
func (t *Tree) PostOrder() []int {
	pre := t.PreOrder()
	for i, j := 0, len(pre)-1; i < j; i, j = i+1, j-1 {
		pre[i], pre[j] = pre[j], pre[i]
	}
	return pre
}

// SubtreeSizes returns, for every vertex, the number of vertices in its
// subtree (including itself).
func (t *Tree) SubtreeSizes() []int {
	size := make([]int, t.N())
	for _, v := range t.PostOrder() {
		size[v] = 1
		for _, c := range t.children[v] {
			size[v] += size[c]
		}
	}
	return size
}

// SubtreeVertices returns the vertices of the subtree rooted at v.
func (t *Tree) SubtreeVertices(v int) []int {
	var out []int
	stack := []int{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, u)
		stack = append(stack, t.children[u]...)
	}
	sort.Ints(out)
	return out
}

// Ancestors returns the ancestors of v from v itself up to the root
// (inclusive of both ends).
func (t *Tree) Ancestors(v int) []int {
	var out []int
	for x := v; x != -1; x = t.parent[x] {
		out = append(out, x)
	}
	return out
}

// IsAncestor reports whether u is an ancestor of v (a vertex is an ancestor
// of itself).
func (t *Tree) IsAncestor(u, v int) bool {
	for x := v; x != -1; x = t.parent[x] {
		if x == u {
			return true
		}
	}
	return false
}

// ToGraph returns the tree as an undirected graph over the same indices
// with default identifiers.
func (t *Tree) ToGraph() *graph.Graph {
	g := graph.New(t.N())
	for v, p := range t.parent {
		if p != -1 {
			g.MustAddEdge(v, p)
		}
	}
	return g
}

// AHUCodes returns a canonical string code for every subtree: two vertices
// receive the same code iff their rooted subtrees are isomorphic (the
// classic Aho–Hopcroft–Ullman encoding with sorted child codes).
func (t *Tree) AHUCodes() []string {
	codes := make([]string, t.N())
	for _, v := range t.PostOrder() {
		kids := make([]string, 0, len(t.children[v]))
		for _, c := range t.children[v] {
			kids = append(kids, codes[c])
		}
		sort.Strings(kids)
		var b strings.Builder
		b.WriteByte('(')
		for _, k := range kids {
			b.WriteString(k)
		}
		b.WriteByte(')')
		codes[v] = b.String()
	}
	return codes
}

// CanonicalCode returns the AHU code of the whole rooted tree.
func (t *Tree) CanonicalCode() string {
	return t.AHUCodes()[t.root]
}

// Isomorphic reports whether two rooted trees are isomorphic as rooted
// unordered trees.
func Isomorphic(a, b *Tree) bool {
	if a.N() != b.N() {
		return false
	}
	return a.CanonicalCode() == b.CanonicalCode()
}

// Centers returns the 1- or 2-element set of center vertices of a
// tree-shaped graph (the vertices minimizing eccentricity), computed by
// iterative leaf stripping.
func Centers(g *graph.Graph) ([]int, error) {
	if !g.IsTree() {
		return nil, fmt.Errorf("rooted: centers of a non-tree")
	}
	n := g.N()
	if n == 1 {
		return []int{0}, nil
	}
	deg := make([]int, n)
	removed := make([]bool, n)
	var layer []int
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] <= 1 {
			layer = append(layer, v)
		}
	}
	remaining := n
	for remaining > 2 {
		var next []int
		for _, v := range layer {
			removed[v] = true
			remaining--
			for _, w := range g.Neighbors(v) {
				if !removed[w] {
					deg[w]--
					if deg[w] == 1 {
						next = append(next, w)
					}
				}
			}
		}
		layer = next
	}
	var centers []int
	for v := 0; v < n; v++ {
		if !removed[v] {
			centers = append(centers, v)
		}
	}
	sort.Ints(centers)
	return centers, nil
}

// UnrootedIsomorphic reports whether two tree-shaped graphs are isomorphic
// as unrooted trees, by comparing canonical codes rooted at centers.
func UnrootedIsomorphic(a, b *graph.Graph) (bool, error) {
	if a.N() != b.N() {
		return false, nil
	}
	ca, err := canonicalUnrooted(a)
	if err != nil {
		return false, err
	}
	cb, err := canonicalUnrooted(b)
	if err != nil {
		return false, err
	}
	return ca == cb, nil
}

func canonicalUnrooted(g *graph.Graph) (string, error) {
	centers, err := Centers(g)
	if err != nil {
		return "", err
	}
	best := ""
	for _, c := range centers {
		t, err := FromGraph(g, c)
		if err != nil {
			return "", err
		}
		code := t.CanonicalCode()
		if best == "" || code < best {
			best = code
		}
	}
	return best, nil
}
