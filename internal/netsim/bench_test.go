package netsim

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cert"
	"repro/internal/graphgen"
	"repro/internal/spanning"
)

// BenchmarkSimulator compares the sharded engine against the legacy
// goroutine-per-vertex, channel-per-edge realization on the same workload:
// an honest spanning-tree assignment on a random tree. The interesting
// columns are allocs/op (the legacy version allocates per vertex, per edge
// and per view; the sharded engine reuses pooled shard buffers) and ns/op.
func BenchmarkSimulator(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		rng := rand.New(rand.NewSource(7))
		g := graphgen.RandomTree(n, rng)
		s := spanning.Tree{}
		a, err := s.Prove(g)
		if err != nil {
			b.Fatal(err)
		}
		e := &Engine{}
		b.Run(fmt.Sprintf("sharded-n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(context.Background(), g, s, a); err != nil {
					b.Fatal(err)
				}
			}
		})
		if n > 10000 {
			// The legacy simulator spawns n goroutines and ~2n channels
			// per run; 100k vertices is exactly the regime it was
			// replaced for.
			continue
		}
		b.Run(fmt.Sprintf("legacy-n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunGoroutinePerVertex(context.Background(), g, s, a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweep measures a full adversarial sweep (standard tamper family
// x trials) on a mid-size instance — the unit of work POST /simulate with
// a tamper spec performs.
func BenchmarkSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := graphgen.RandomTree(2000, rng)
	s := spanning.Tree{}
	a, err := s.Prove(g)
	if err != nil {
		b.Fatal(err)
	}
	e := &Engine{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Sweep(context.Background(), g, s, a, cert.StandardTampers(), 3, 1); err != nil {
			b.Fatal(err)
		}
	}
}
