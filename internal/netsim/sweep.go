package netsim

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/cert"
	"repro/internal/graph"
)

// TamperStat is the sweep outcome for one tamper kind.
type TamperStat struct {
	// Tamper is the tamper's name, e.g. "flip-bits-1" or "swap".
	Tamper string `json:"tamper"`
	// Trials is how many times the tamper was applied.
	Trials int `json:"trials"`
	// NoOps counts trials where the tamper reported it did not change the
	// assignment; these are excluded from the detection rate.
	NoOps int `json:"noops"`
	// Mutated counts trials that actually corrupted the assignment.
	Mutated int `json:"mutated"`
	// Detected counts mutated trials rejected by at least one vertex.
	Detected int `json:"detected"`
	// Undetected lists the trial indices of mutated-but-accepted trials,
	// for reproduction; any entry is a soundness finding.
	Undetected []int `json:"undetected,omitempty"`
	// Rejecters is the total number of rejecting vertices across detected
	// trials — how loud the alarm is, in the self-stabilization story.
	Rejecters int `json:"rejecters"`
	// VerifyNS is the total wall time spent in verification rounds for
	// this tamper, across all non-no-op trials.
	VerifyNS int64 `json:"verify_ns"`
}

// DetectionRate returns Detected/Mutated, or 1 when nothing mutated (no
// corruption escaped because none occurred).
func (ts TamperStat) DetectionRate() float64 {
	if ts.Mutated == 0 {
		return 1
	}
	return float64(ts.Detected) / float64(ts.Mutated)
}

// SweepReport aggregates an adversarial soundness sweep: each tamper
// applied `trials` times to the honest assignment, each corrupted
// assignment pushed through a distributed verification round.
type SweepReport struct {
	Stats []TamperStat `json:"stats"`
	// AllDetected reports whether every actually-mutated trial was caught
	// by at least one vertex.
	AllDetected bool `json:"all_detected"`
}

// Sweep applies each tamper `trials` times to the honest assignment and
// runs the sharded verification round on every corrupted variant. The rng
// for each tamper is derived from seed and the tamper's name, so a sweep
// is reproducible and per-tamper results do not depend on the order or
// presence of other tampers: re-running a single tamper kind with the
// same seed replays exactly the trials (and Undetected indices) it had
// inside a full-family sweep.
//
// The honest assignment is never modified (tampers copy), and honest is
// expected to be accepting — callers verify it first; Sweep itself only
// measures what happens to corrupted variants.
func (e *Engine) Sweep(ctx context.Context, g *graph.Graph, s cert.Scheme, honest cert.Assignment, tampers []cert.Tamper, trials int, seed int64) (SweepReport, error) {
	if len(honest) != g.N() {
		return SweepReport{}, fmt.Errorf("netsim: sweep: assignment has %d certificates for %d vertices", len(honest), g.N())
	}
	if trials <= 0 {
		return SweepReport{}, fmt.Errorf("netsim: sweep: trials must be positive, got %d", trials)
	}
	m := e.metrics()
	rep := SweepReport{AllDetected: true}
	for _, tm := range tampers {
		rng := rand.New(rand.NewSource(seed ^ int64(nameHash(tm.Name))))
		st := TamperStat{Tamper: tm.Name, Trials: trials}
		for i := 0; i < trials; i++ {
			if err := ctx.Err(); err != nil {
				return rep, fmt.Errorf("netsim: sweep: %w", err)
			}
			bad, mutated := tm.Apply(honest, rng)
			if !mutated {
				st.NoOps++
				m.sweepNoop.Inc()
				continue
			}
			st.Mutated++
			t0 := time.Now()
			r, err := e.Run(ctx, g, s, bad)
			st.VerifyNS += time.Since(t0).Nanoseconds()
			if err != nil {
				return rep, err
			}
			if r.Accepted {
				st.Undetected = append(st.Undetected, i)
				m.sweepUndetected.Inc()
			} else {
				st.Detected++
				st.Rejecters += len(r.Rejecters)
				m.sweepDetected.Inc()
			}
		}
		if st.Detected < st.Mutated {
			rep.AllDetected = false
		}
		rep.Stats = append(rep.Stats, st)
	}
	return rep, nil
}

// nameHash folds a tamper name into the seed-derivation constant (FNV-1a)
// so each tamper's randomness is a pure function of (seed, name).
func nameHash(name string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return h.Sum32()
}

// Sweep runs an adversarial soundness sweep on the shared Default engine
// with the standard tamper family. See Engine.Sweep.
func Sweep(ctx context.Context, g *graph.Graph, s cert.Scheme, honest cert.Assignment, trials int, seed int64) (SweepReport, error) {
	return Default.Sweep(ctx, g, s, honest, cert.StandardTampers(), trials, seed)
}
