package netsim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cert"
	"repro/internal/graph"
)

// message is what travels over an edge during the legacy exchange round:
// the sender's identifier and certificate. Nothing else may cross the wire
// — in particular no adjacency information, matching the paper's model.
type message struct {
	id   graph.ID
	cert cert.Certificate
}

// RunGoroutinePerVertex is the original literal realization of the model:
// one goroutine per vertex, one buffered channel per directed edge, one
// certificate-exchange round. It is retained as the reference the sharded
// engine is differential-tested and benchmarked against — it spends O(n)
// goroutines and O(m) channels per run, which is exactly the cost profile
// the sharded engine exists to eliminate.
func RunGoroutinePerVertex(ctx context.Context, g *graph.Graph, s cert.Scheme, a cert.Assignment) (Report, error) {
	n := g.N()
	if len(a) != n {
		return Report{}, fmt.Errorf("netsim: assignment has %d certificates for %d vertices", len(a), n)
	}

	// inbox[v][i] receives the message from the i-th neighbour of v.
	inbox := make([][]chan message, n)
	for v := 0; v < n; v++ {
		inbox[v] = make([]chan message, g.Degree(v))
		for i := range inbox[v] {
			inbox[v][i] = make(chan message, 1)
		}
	}
	// channelTo[v][w] is the index of w in v's inbox, i.e. the channel on
	// which w must send to v.
	channelTo := make([]map[int]int, n)
	for v := 0; v < n; v++ {
		channelTo[v] = make(map[int]int, g.Degree(v))
		for i, w := range g.Neighbors(v) {
			channelTo[v][w] = i
		}
	}

	type verdict struct {
		vertex int
		accept bool
	}
	verdicts := make(chan verdict, n)

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			// Round 1: send own (id, certificate) to every neighbour.
			for _, w := range g.Neighbors(v) {
				select {
				case inbox[w][channelTo[w][v]] <- message{id: g.IDOf(v), cert: a[v]}:
				case <-ctx.Done():
					return
				}
			}
			// Receive from every neighbour and assemble the radius-1 view.
			view := cert.View{ID: g.IDOf(v), Cert: a[v]}
			view.Neighbors = make([]cert.NeighborView, 0, g.Degree(v))
			for i := range inbox[v] {
				select {
				case m := <-inbox[v][i]:
					view.Neighbors = append(view.Neighbors, cert.NeighborView{ID: m.id, Cert: m.cert})
				case <-ctx.Done():
					return
				}
			}
			sort.Slice(view.Neighbors, func(i, j int) bool {
				return view.Neighbors[i].ID < view.Neighbors[j].ID
			})
			select {
			case verdicts <- verdict{vertex: v, accept: s.Verify(view)}:
			case <-ctx.Done():
			}
		}(v)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Channels are buffered, so the workers blocked on ctx will unwind;
		// wait for them so no goroutine leaks past this call.
		wg.Wait()
		return Report{}, fmt.Errorf("netsim: %w", ctx.Err())
	}
	close(verdicts)

	rep := Report{Accepted: true, Rounds: 1, Workers: n}
	for vd := range verdicts {
		if !vd.accept {
			rep.Accepted = false
			rep.Rejecters = append(rep.Rejecters, vd.vertex)
		}
	}
	sort.Ints(rep.Rejecters)
	return rep, nil
}
