package netsim

import (
	"context"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/spanning"
)

// degreeAtMost mirrors the toy scheme from package cert's tests.
type degreeAtMost struct{ D int }

func (s degreeAtMost) Name() string                       { return "degree-at-most" }
func (s degreeAtMost) Holds(g *graph.Graph) (bool, error) { return g.MaxDegree() <= s.D, nil }
func (s degreeAtMost) Prove(g *graph.Graph) (cert.Assignment, error) {
	return make(cert.Assignment, g.N()), nil
}
func (s degreeAtMost) Verify(v cert.View) bool { return v.Degree() <= s.D }

var _ cert.Scheme = degreeAtMost{}

// sameVerdict fails the test unless the report matches the sequential
// result exactly (accepted flag and sorted rejecter list).
func sameVerdict(t *testing.T, rep Report, seq cert.Result) {
	t.Helper()
	if rep.Accepted != seq.Accepted {
		t.Fatalf("distributed %v vs sequential %v", rep.Accepted, seq.Accepted)
	}
	if len(rep.Rejecters) != len(seq.Rejecters) {
		t.Fatalf("rejecters: %v vs %v", rep.Rejecters, seq.Rejecters)
	}
	for i := range rep.Rejecters {
		if rep.Rejecters[i] != seq.Rejecters[i] {
			t.Fatalf("rejecters: %v vs %v", rep.Rejecters, seq.Rejecters)
		}
	}
}

func TestRunMatchesSequentialOnAcceptingInstance(t *testing.T) {
	g := graphgen.Cycle(8)
	s := degreeAtMost{D: 2}
	a := make(cert.Assignment, g.N())
	rep, err := Run(context.Background(), g, s, a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || rep.Rounds != 1 {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestRunMatchesSequentialOnRejectingInstance(t *testing.T) {
	g := graphgen.Star(7)
	s := degreeAtMost{D: 2}
	a := make(cert.Assignment, g.N())
	rep, err := Run(context.Background(), g, s, a)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := cert.RunSequential(g, s, a)
	if err != nil {
		t.Fatal(err)
	}
	sameVerdict(t, rep, seq)
}

func TestRunAgreesWithSequentialQuick(t *testing.T) {
	// Property: on random graphs with random certificates, the sharded
	// simulator and the sequential referee give identical verdicts.
	s := degreeAtMost{D: 3}
	f := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graphgen.RandomConnected(n, n/2, rng)
		a := cert.RandomAssignment(n, 8, rng)
		rep, err := Run(context.Background(), g, s, a)
		if err != nil {
			return false
		}
		seq, err := cert.RunSequential(g, s, a)
		if err != nil {
			return false
		}
		if rep.Accepted != seq.Accepted || len(rep.Rejecters) != len(seq.Rejecters) {
			return false
		}
		for i := range rep.Rejecters {
			if rep.Rejecters[i] != seq.Rejecters[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestShardedEquivalenceProperty is the differential property test of the
// sharded rewrite: random (graph, scheme, tamper, seed) cases must give
// identical Accepted and Rejecters under the sharded engine, the legacy
// goroutine-per-vertex realization, and the sequential referee — on
// honest and on tampered assignments, across worker counts.
func TestShardedEquivalenceProperty(t *testing.T) {
	tampers := cert.StandardTampers()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := graphgen.RandomConnected(n, rng.Intn(n), rng)

		var s cert.Scheme
		var honest cert.Assignment
		if seed%2 == 0 {
			s = degreeAtMost{D: 1 + rng.Intn(4)}
			honest = make(cert.Assignment, n)
		} else {
			s = spanning.Tree{}
			var err error
			honest, err = s.Prove(g)
			if err != nil {
				t.Fatalf("seed %d: prove: %v", seed, err)
			}
		}
		a := honest
		if tm := tampers[rng.Intn(len(tampers))]; rng.Intn(3) > 0 {
			a, _ = tm.Apply(honest, rng)
		}

		seq, err := cert.RunSequential(g, s, a)
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		for _, workers := range []int{1, 2, 7, 0} {
			e := &Engine{Workers: workers}
			rep, err := e.Run(context.Background(), g, s, a)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			sameVerdict(t, rep, seq)
		}
		legacy, err := RunGoroutinePerVertex(context.Background(), g, s, a)
		if err != nil {
			t.Fatalf("seed %d: legacy: %v", seed, err)
		}
		sameVerdict(t, legacy, seq)
	}
}

// TestEngineReuseAcrossRuns exercises the sync.Pool path: repeated runs on
// one engine (the serving pattern) must keep producing correct verdicts
// even though view buffers are recycled.
func TestEngineReuseAcrossRuns(t *testing.T) {
	e := &Engine{Workers: 3}
	rng := rand.New(rand.NewSource(11))
	g := graphgen.RandomConnected(60, 40, rng)
	s := spanning.Tree{}
	honest, err := s.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		a := honest
		if i%2 == 1 {
			a, _ = cert.RandomizeOne().Apply(honest, rng)
		}
		seq, err := cert.RunSequential(g, s, a)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(context.Background(), g, s, a)
		if err != nil {
			t.Fatal(err)
		}
		sameVerdict(t, rep, seq)
	}
}

// goroutineCounter records the peak goroutine count observed while its
// Verify is running — a probe for the bounded-concurrency guarantee.
type goroutineCounter struct {
	max atomic.Int64
}

func (c *goroutineCounter) Name() string                       { return "goroutine-counter" }
func (c *goroutineCounter) Holds(g *graph.Graph) (bool, error) { return true, nil }
func (c *goroutineCounter) Prove(g *graph.Graph) (cert.Assignment, error) {
	return make(cert.Assignment, g.N()), nil
}
func (c *goroutineCounter) Verify(v cert.View) bool {
	n := int64(runtime.NumGoroutine())
	for {
		old := c.max.Load()
		if n <= old || c.max.CompareAndSwap(old, n) {
			return true
		}
	}
}

func TestRunGoroutinesBoundedByWorkerCount(t *testing.T) {
	const workers = 4
	base := runtime.NumGoroutine()
	e := &Engine{Workers: workers}
	probe := &goroutineCounter{}
	g := graphgen.Path(10000)
	if _, err := e.Run(context.Background(), g, probe, make(cert.Assignment, g.N())); err != nil {
		t.Fatal(err)
	}
	// Allow a small slack for runtime/test goroutines that come and go,
	// but nothing anywhere near the per-vertex regime (n + const).
	if peak := probe.max.Load(); peak > int64(base+workers+4) {
		t.Fatalf("observed %d goroutines during run; base %d + workers %d exceeded", peak, base, workers)
	}
}

// blockingScheme sleeps in Verify so a cancellation lands mid-run.
type blockingScheme struct{ d time.Duration }

func (s blockingScheme) Name() string                       { return "blocking" }
func (s blockingScheme) Holds(g *graph.Graph) (bool, error) { return true, nil }
func (s blockingScheme) Prove(g *graph.Graph) (cert.Assignment, error) {
	return make(cert.Assignment, g.N()), nil
}
func (s blockingScheme) Verify(v cert.View) bool {
	time.Sleep(s.d)
	return true
}

// TestRunNoGoroutineLeakOnCancellation pins down the no-leak guarantee:
// after a cancelled Run returns, every worker goroutine has been joined.
// This is the regression test the sharded rewrite must keep green.
func TestRunNoGoroutineLeakOnCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	e := &Engine{Workers: 4}
	g := graphgen.Path(4000)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, err := e.Run(ctx, g, blockingScheme{d: 50 * time.Microsecond}, make(cert.Assignment, g.N()))
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	// Run joins its workers before returning; only the cancel helper above
	// may still be winding down. Poll briefly to avoid scheduler noise.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRunSizeMismatch(t *testing.T) {
	g := graphgen.Path(3)
	if _, err := Run(context.Background(), g, degreeAtMost{D: 5}, make(cert.Assignment, 1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graphgen.Path(50)
	_, err := Run(ctx, g, degreeAtMost{D: 5}, make(cert.Assignment, 50))
	if err == nil {
		t.Fatal("pre-cancelled context accepted")
	}
}

func TestProveAndRun(t *testing.T) {
	g := graphgen.Cycle(10)
	a, rep, err := ProveAndRun(context.Background(), g, degreeAtMost{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || len(a) != g.N() {
		t.Fatalf("rep=%+v len(a)=%d", rep, len(a))
	}
}

// TestShardedLargeN is the scale acceptance check: a 100k-vertex round
// must complete on the sharded engine.
func TestShardedLargeN(t *testing.T) {
	const n = 100000
	rng := rand.New(rand.NewSource(3))
	g := graphgen.RandomTree(n, rng)
	s := spanning.Tree{}
	a, err := s.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), g, s, a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("honest 100k-vertex assignment rejected at %v", rep.Rejecters[:min(len(rep.Rejecters), 5)])
	}
}

func TestSweepDetectsStandardTampers(t *testing.T) {
	g := graphgen.Cycle(40)
	s := spanning.Tree{}
	honest, err := s.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Sweep(context.Background(), g, s, honest, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDetected {
		t.Fatalf("undetected corruption: %+v", rep.Stats)
	}
	sawMutation := false
	for _, st := range rep.Stats {
		if st.Trials != 15 || st.NoOps+st.Mutated != st.Trials {
			t.Fatalf("inconsistent accounting: %+v", st)
		}
		if st.Mutated > 0 {
			sawMutation = true
			if st.Detected != st.Mutated || st.DetectionRate() != 1 {
				t.Fatalf("tamper %s: %d/%d detected", st.Tamper, st.Detected, st.Mutated)
			}
			if st.Rejecters == 0 {
				t.Fatalf("tamper %s detected with no rejecters", st.Tamper)
			}
		}
	}
	if !sawMutation {
		t.Fatal("sweep produced no mutated trial at all")
	}
}

func TestSweepCountsNoOpsSeparately(t *testing.T) {
	// degreeAtMost uses empty certificates, so flip/truncate/randomize can
	// never mutate and swap swaps identical (empty) certificates: every
	// trial must be accounted as a no-op, not as undetected corruption.
	g := graphgen.Cycle(12)
	s := degreeAtMost{D: 2}
	honest := make(cert.Assignment, g.N())
	rep, err := Sweep(context.Background(), g, s, honest, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDetected {
		t.Fatalf("no-op trials reported as undetected corruption: %+v", rep.Stats)
	}
	for _, st := range rep.Stats {
		if st.NoOps != st.Trials || st.Mutated != 0 {
			t.Fatalf("tamper %s on empty certificates: %+v", st.Tamper, st)
		}
	}
}

// TestSweepPerTamperIndependence pins the reproduction contract: a single
// tamper kind re-run with the same seed must replay exactly the trials it
// had inside a full-family sweep, whatever its position there.
func TestSweepPerTamperIndependence(t *testing.T) {
	g := graphgen.Cycle(30)
	s := spanning.Tree{}
	honest, err := s.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	family := cert.StandardTampers()
	full, err := Default.Sweep(context.Background(), g, s, honest, family, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed family and solo runs must give identical per-name stats.
	reversed := make([]cert.Tamper, len(family))
	for i, tm := range family {
		reversed[len(family)-1-i] = tm
	}
	rev, err := Default.Sweep(context.Background(), g, s, honest, reversed, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	byName := func(rep SweepReport) map[string]TamperStat {
		m := map[string]TamperStat{}
		for _, st := range rep.Stats {
			st.VerifyNS = 0 // wall time legitimately varies
			m[st.Tamper] = st
		}
		return m
	}
	fullBy, revBy := byName(full), byName(rev)
	for name, st := range fullBy {
		if got := revBy[name]; got.Mutated != st.Mutated || got.Detected != st.Detected || got.NoOps != st.NoOps {
			t.Fatalf("tamper %s depends on family order: %+v vs %+v", name, st, got)
		}
		solo, err := Default.Sweep(context.Background(), g, s, honest, []cert.Tamper{cert.StandardTampers()[indexOf(family, name)]}, 12, 5)
		if err != nil {
			t.Fatal(err)
		}
		soloSt := byName(solo)[name]
		if soloSt.Mutated != st.Mutated || soloSt.Detected != st.Detected || soloSt.NoOps != st.NoOps {
			t.Fatalf("tamper %s depends on family presence: %+v vs %+v", name, st, soloSt)
		}
	}
}

func indexOf(family []cert.Tamper, name string) int {
	for i, tm := range family {
		if tm.Name == name {
			return i
		}
	}
	return -1
}

func TestSweepRejectsBadInput(t *testing.T) {
	g := graphgen.Path(4)
	if _, err := Sweep(context.Background(), g, degreeAtMost{D: 5}, make(cert.Assignment, 2), 5, 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Sweep(context.Background(), g, degreeAtMost{D: 5}, make(cert.Assignment, 4), 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}
