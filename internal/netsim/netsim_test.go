package netsim

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/graphgen"
)

// degreeAtMost mirrors the toy scheme from package cert's tests.
type degreeAtMost struct{ D int }

func (s degreeAtMost) Name() string                       { return "degree-at-most" }
func (s degreeAtMost) Holds(g *graph.Graph) (bool, error) { return g.MaxDegree() <= s.D, nil }
func (s degreeAtMost) Prove(g *graph.Graph) (cert.Assignment, error) {
	return make(cert.Assignment, g.N()), nil
}
func (s degreeAtMost) Verify(v cert.View) bool { return v.Degree() <= s.D }

var _ cert.Scheme = degreeAtMost{}

func TestRunMatchesSequentialOnAcceptingInstance(t *testing.T) {
	g := graphgen.Cycle(8)
	s := degreeAtMost{D: 2}
	a := make(cert.Assignment, g.N())
	rep, err := Run(context.Background(), g, s, a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || rep.Rounds != 1 {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestRunMatchesSequentialOnRejectingInstance(t *testing.T) {
	g := graphgen.Star(7)
	s := degreeAtMost{D: 2}
	a := make(cert.Assignment, g.N())
	rep, err := Run(context.Background(), g, s, a)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := cert.RunSequential(g, s, a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != seq.Accepted {
		t.Fatalf("distributed %v vs sequential %v", rep.Accepted, seq.Accepted)
	}
	if len(rep.Rejecters) != len(seq.Rejecters) {
		t.Fatalf("rejecters: %v vs %v", rep.Rejecters, seq.Rejecters)
	}
	for i := range rep.Rejecters {
		if rep.Rejecters[i] != seq.Rejecters[i] {
			t.Fatalf("rejecters: %v vs %v", rep.Rejecters, seq.Rejecters)
		}
	}
}

func TestRunAgreesWithSequentialQuick(t *testing.T) {
	// Property: on random graphs with random certificates, the distributed
	// simulator and the sequential referee give identical verdicts.
	s := degreeAtMost{D: 3}
	f := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graphgen.RandomConnected(n, n/2, rng)
		a := cert.RandomAssignment(n, 8, rng)
		rep, err := Run(context.Background(), g, s, a)
		if err != nil {
			return false
		}
		seq, err := cert.RunSequential(g, s, a)
		if err != nil {
			return false
		}
		if rep.Accepted != seq.Accepted || len(rep.Rejecters) != len(seq.Rejecters) {
			return false
		}
		for i := range rep.Rejecters {
			if rep.Rejecters[i] != seq.Rejecters[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunSizeMismatch(t *testing.T) {
	g := graphgen.Path(3)
	if _, err := Run(context.Background(), g, degreeAtMost{D: 5}, make(cert.Assignment, 1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graphgen.Path(50)
	_, err := Run(ctx, g, degreeAtMost{D: 5}, make(cert.Assignment, 50))
	// A pre-cancelled context may still allow the tiny run to finish (all
	// channels are buffered); both outcomes are acceptable, but an error
	// must wrap context.Canceled if reported.
	if err != nil && ctx.Err() == nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestProveAndRun(t *testing.T) {
	g := graphgen.Cycle(10)
	a, rep, err := ProveAndRun(context.Background(), g, degreeAtMost{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || len(a) != g.N() {
		t.Fatalf("rep=%+v len(a)=%d", rep, len(a))
	}
}

func BenchmarkDistributedVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graphgen.RandomConnected(200, 100, rng)
	s := degreeAtMost{D: 1000}
	a := make(cert.Assignment, g.N())
	b.Run("distributed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(context.Background(), g, s, a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cert.RunSequential(g, s, a); err != nil {
				b.Fatal(err)
			}
		}
	})
}
