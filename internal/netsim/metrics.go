package netsim

import (
	"repro/internal/obs"
)

// Metric families the simulator writes, exported so the server layer and
// tests address the exact series instead of retyping strings.
const (
	// MetricRounds counts completed verification rounds.
	MetricRounds = "netsim_rounds_total"
	// MetricRoundSeconds is the whole-round latency histogram.
	MetricRoundSeconds = "netsim_round_seconds"
	// MetricShardSeconds is the per-shard latency histogram: its spread
	// against netsim_round_seconds is the shard-imbalance signal.
	MetricShardSeconds = "netsim_shard_seconds"
	// MetricRoundBits counts certificate bits moved across the simulated
	// wire (each neighbour receives each certificate once).
	MetricRoundBits = "netsim_round_bits_total"
	// MetricRoundMessages counts simulated messages (one per directed
	// edge per round).
	MetricRoundMessages = "netsim_round_messages_total"
	// MetricInflightRounds gauges rounds currently executing.
	MetricInflightRounds = "netsim_inflight_rounds"
	// MetricShardPanics counts shard workers that panicked and were
	// contained: the round fails with an error, the process survives.
	MetricShardPanics = "netsim_shard_panics_total"
	// MetricSweepTrials counts adversarial sweep trials, labeled
	// outcome=noop|detected|undetected. Mutated trials are the detected
	// and undetected ones together.
	MetricSweepTrials = "netsim_sweep_trials_total"
)

// simMetrics holds the engine's metric handles, resolved once so the round
// hot path pays handle dereferences, not registry lookups.
type simMetrics struct {
	rounds       *obs.Counter
	roundSeconds *obs.Histogram
	shardSeconds *obs.Histogram
	bits         *obs.Counter
	messages     *obs.Counter
	inflight     *obs.Gauge
	shardPanics  *obs.Counter

	sweepNoop       *obs.Counter
	sweepDetected   *obs.Counter
	sweepUndetected *obs.Counter
}

// metrics resolves the engine's metric handles against its registry
// (obs.Default() when Obs is nil). Safe under concurrent Run calls.
func (e *Engine) metrics() *simMetrics {
	e.metricsOnce.Do(func() {
		r := e.Obs
		if r == nil {
			r = obs.Default()
		}
		trial := func(outcome string) *obs.Counter {
			return r.Counter(MetricSweepTrials,
				"adversarial sweep trials by outcome",
				obs.L("outcome", outcome))
		}
		e.sim = &simMetrics{
			rounds:          r.Counter(MetricRounds, "completed verification rounds"),
			roundSeconds:    r.Histogram(MetricRoundSeconds, "verification round latency"),
			shardSeconds:    r.Histogram(MetricShardSeconds, "per-shard verification latency"),
			bits:            r.Counter(MetricRoundBits, "certificate bits exchanged"),
			messages:        r.Counter(MetricRoundMessages, "simulated messages (one per directed edge)"),
			inflight:        r.Gauge(MetricInflightRounds, "verification rounds in flight"),
			shardPanics:     r.Counter(MetricShardPanics, "contained shard worker panics"),
			sweepNoop:       trial("noop"),
			sweepDetected:   trial("detected"),
			sweepUndetected: trial("undetected"),
		}
	})
	return e.sim
}
