// Package netsim runs a local certification the way a self-stabilizing
// network would: a single certificate-exchange round in which every node
// learns the identifier and certificate of each neighbour, followed by the
// local verification algorithm at every node. The simulator must produce
// exactly the verdict of the sequential referee in package cert — an
// invariant covered by differential and property tests.
//
// The engine is sharded: vertices are partitioned into contiguous shards
// over a bounded worker pool, and the exchange round is realized through
// preallocated per-shard view buffers reused across runs via sync.Pool.
// This replaces the original goroutine-per-vertex, channel-per-edge
// realization (kept in legacy.go as a differential baseline), which
// collapsed under serving load: n goroutines and 2m channels per request
// versus a constant number of workers and near-zero steady-state
// allocations here.
//
// This is the "self-stabilization" deployment story of the paper: the
// verification round is what a network would run periodically to detect
// corrupted global state with one round of communication.
package netsim

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
)

// roundBarrier is the fault point at the shard fan-out: each worker passes
// it before touching its vertex range, so an armed plan can fail or panic
// individual shards and exercise the containment path.
var roundBarrier = fault.NewPoint("netsim.round.barrier")

// Report is the outcome of a distributed verification round.
type Report struct {
	Accepted  bool
	Rejecters []int // vertex indices that rejected, sorted
	Rounds    int   // communication rounds used (always 1 in this model)
	Workers   int   // workers the engine used for this run
}

// Engine is a sharded round engine. The zero value is ready to use; it
// runs with GOMAXPROCS workers and an engine-local buffer pool. Engines
// must not be copied after first use (they embed a sync.Pool).
type Engine struct {
	// Workers bounds the goroutines a run may spawn; <= 0 means
	// GOMAXPROCS. A run never uses more goroutines than this, whatever
	// the graph size.
	Workers int

	// Obs is the registry round metrics land in; nil means the
	// package-level obs.Default(). Set before the first Run — the handles
	// are resolved once.
	Obs *obs.Registry

	// pool recycles per-shard scratch buffers (neighbour views and
	// rejecter lists) across runs, so a warmed-up engine performs the
	// exchange round without per-run allocations proportional to n or m.
	pool sync.Pool

	metricsOnce sync.Once
	sim         *simMetrics
}

// shardScratch is the reusable working memory of one worker: the view
// buffer the exchange round is assembled into, and the local rejecter
// accumulator.
type shardScratch struct {
	views []cert.NeighborView
	rej   []int
}

// checkInterval is how many vertices a worker verifies between context
// checks; a power of two so the test compiles to a mask.
const checkInterval = 256

// Default is the shared engine package-level Run delegates to, so every
// caller that does not need its own worker bound shares one warm buffer
// pool.
var Default = &Engine{}

// Run executes one distributed verification round on the shared Default
// engine. See Engine.Run.
func Run(ctx context.Context, g *graph.Graph, s cert.Scheme, a cert.Assignment) (Report, error) {
	return Default.Run(ctx, g, s, a)
}

// effectiveWorkers resolves the worker count for n vertices.
func (e *Engine) effectiveWorkers(n int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (e *Engine) getScratch() *shardScratch {
	if sc, ok := e.pool.Get().(*shardScratch); ok {
		return sc
	}
	return &shardScratch{}
}

// Run executes one distributed verification round of scheme s on graph g
// under the certificate assignment a: every vertex assembles its radius-1
// view (own identifier and certificate plus each neighbour's, sorted by
// identifier — exactly what crosses the wire in the paper's model, no
// adjacency information) and runs the local verification algorithm.
//
// Vertices are partitioned into one contiguous shard per worker; each
// worker assembles views in a pooled scratch buffer that is reused from
// vertex to vertex and returned to the engine pool when the shard is done.
// Consequently Verify implementations must not retain the view's Neighbors
// slice past the call — none of the schemes in this module do.
//
// The verdict is identical to cert.RunSequential: same Accepted flag, same
// sorted Rejecters. Cancellation via ctx aborts promptly with an error;
// all workers are joined before Run returns, so no goroutine outlives the
// call, and at most Workers goroutines exist during it.
func (e *Engine) Run(ctx context.Context, g *graph.Graph, s cert.Scheme, a cert.Assignment) (Report, error) {
	start := time.Now()
	n := g.N()
	if len(a) != n {
		return Report{}, fmt.Errorf("netsim: assignment has %d certificates for %d vertices", len(a), n)
	}
	if err := ctx.Err(); err != nil {
		return Report{}, &fault.CancelledError{Phase: "verify", Cause: err}
	}
	m := e.metrics()
	workers := e.effectiveWorkers(n)
	if n == 0 {
		m.rounds.Inc()
		return Report{Accepted: true, Rounds: 1, Workers: 0}, nil
	}
	_, rsp := obs.Start(ctx, "round")
	rsp.SetAttr("n", n)
	rsp.SetAttr("workers", workers)
	m.inflight.Inc()
	defer func() {
		m.inflight.Dec()
		rsp.End()
		m.rounds.Inc()
		m.roundSeconds.Observe(rsp.Duration())
	}()

	// Contiguous shards, processed and concatenated in shard order, keep
	// the merged rejecter list sorted without a final sort.
	rejecters := make([][]int, workers)
	shardErrs := make([]error, workers)
	var aborted atomic.Bool
	var wg sync.WaitGroup
	per := n / workers
	extra := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + per
		if w < extra {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// A panicking shard (a buggy Verify, an armed panic fault) must
			// not take the process down: contain it, fail the round.
			defer func() {
				if r := recover(); r != nil {
					m.shardPanics.Inc()
					shardErrs[w] = fmt.Errorf("netsim: shard %d panicked: %v", w, r)
					aborted.Store(true)
				}
			}()
			if err := roundBarrier.Inject(); err != nil {
				shardErrs[w] = fmt.Errorf("netsim: shard %d: %w", w, err)
				aborted.Store(true)
				return
			}
			// Clock reads and the atomic metric flush stay out here so the
			// annotated shard body is pure verification work.
			t0 := time.Now()
			rej, bits, msgs, shardAborted := e.runShard(ctx, g, s, a, lo, hi)
			if shardAborted {
				aborted.Store(true)
			}
			rejecters[w] = rej
			m.shardSeconds.Observe(time.Since(t0))
			m.bits.Add(int64(bits))
			m.messages.Add(int64(msgs))
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	if aborted.Load() {
		for _, err := range shardErrs {
			if err != nil {
				return Report{}, err
			}
		}
		return Report{}, &fault.CancelledError{
			Phase:   "verify",
			Elapsed: time.Since(start),
			Cause:   context.Cause(ctx),
		}
	}

	rep := Report{Accepted: true, Rounds: 1, Workers: workers}
	for _, rj := range rejecters {
		if len(rj) > 0 {
			rep.Accepted = false
			rep.Rejecters = append(rep.Rejecters, rj...)
		}
	}
	return rep, nil
}

// runShard verifies the contiguous vertex range [lo, hi): for each vertex
// it assembles the radius-1 exchange round into the pooled scratch and
// runs the scheme's local verifier. Traffic accumulates in shard-local
// ints so the per-view loop stays plain adds. A non-nil rej slice owns
// its memory (the scratch returns to the pool before it is published).
//
//certlint:hotpath
func (e *Engine) runShard(ctx context.Context, g *graph.Graph, s cert.Scheme, a cert.Assignment, lo, hi int) (rejOut []int, bits, msgs int, aborted bool) {
	sc := e.getScratch()
	rej := sc.rej[:0]
	// All shards read the same immutable CSR snapshot; hoisting it out of
	// the vertex loop keeps the row accesses two loads with no pointer
	// chasing through the mutable adjacency.
	csr := g.CSR()
	for v := lo; v < hi; v++ {
		if (v-lo)%checkInterval == 0 && ctx.Err() != nil {
			sc.rej = rej[:0]
			e.pool.Put(sc)
			return nil, bits, msgs, true
		}
		// The exchange round for v: collect (id, certificate) from every
		// neighbour into the reused view buffer.
		nbrs := csr.Row(v)
		views := sc.views[:0]
		for _, u := range nbrs {
			views = append(views, cert.NeighborView{ID: g.IDOf(int(u)), Cert: a[u]})
			bits += len(a[u])
		}
		msgs += len(nbrs)
		slices.SortFunc(views, cmpNeighborView)
		sc.views = views // keep grown capacity for the next vertex
		if !s.Verify(cert.View{ID: g.IDOf(v), Cert: a[v], Neighbors: views}) {
			rej = append(rej, v)
		}
	}
	if len(rej) > 0 {
		rejOut = append([]int(nil), rej...)
	}
	sc.rej = rej[:0]
	e.pool.Put(sc)
	return rejOut, bits, msgs, false
}

// cmpNeighborView orders exchanged views by neighbour identifier; package
// level so the per-vertex sort does not allocate a closure.
func cmpNeighborView(x, y cert.NeighborView) int {
	switch {
	case x.ID < y.ID:
		return -1
	case x.ID > y.ID:
		return 1
	default:
		return 0
	}
}

// ProveAndRun is the distributed counterpart of cert.ProveAndVerify.
func ProveAndRun(ctx context.Context, g *graph.Graph, s cert.Scheme) (cert.Assignment, Report, error) {
	a, err := cert.ProveWithContext(ctx, s, g)
	if err != nil {
		return nil, Report{}, fmt.Errorf("netsim: %s: prove: %w", s.Name(), err)
	}
	rep, err := Run(ctx, g, s, a)
	if err != nil {
		return nil, Report{}, err
	}
	return a, rep, nil
}
