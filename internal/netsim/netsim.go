// Package netsim runs a local certification the way a real network would:
// one goroutine per vertex, one message exchange round over per-edge
// channels (each node sends its identifier and certificate to every
// neighbour), then each node runs the local verification algorithm on the
// view it assembled. The simulator must produce exactly the verdict of the
// sequential referee in package cert — an invariant covered by tests.
//
// This is the "self-stabilization" deployment story of the paper: the
// verification round is what a network would run periodically to detect
// corrupted global state with one round of communication.
package netsim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cert"
	"repro/internal/graph"
)

// message is what travels over an edge during the exchange round: the
// sender's identifier and certificate. Nothing else may cross the wire —
// in particular no adjacency information, matching the paper's model.
type message struct {
	id   graph.ID
	cert cert.Certificate
}

// Report is the outcome of a distributed verification round.
type Report struct {
	Accepted  bool
	Rejecters []int // vertex indices that rejected, sorted
	Rounds    int   // communication rounds used (always 1 in this model)
}

// Run executes one distributed verification round of scheme s on graph g
// under the certificate assignment a. It spawns one goroutine per vertex,
// wires a buffered channel per directed edge, performs the single
// certificate-exchange round, and aggregates the per-vertex verdicts.
//
// The context allows cancelling a run; since every channel is buffered
// with capacity 1 the simulation cannot deadlock, but a cancelled context
// still aborts promptly with an error.
func Run(ctx context.Context, g *graph.Graph, s cert.Scheme, a cert.Assignment) (Report, error) {
	n := g.N()
	if len(a) != n {
		return Report{}, fmt.Errorf("netsim: assignment has %d certificates for %d vertices", len(a), n)
	}

	// inbox[v][i] receives the message from the i-th neighbour of v.
	inbox := make([][]chan message, n)
	for v := 0; v < n; v++ {
		inbox[v] = make([]chan message, g.Degree(v))
		for i := range inbox[v] {
			inbox[v][i] = make(chan message, 1)
		}
	}
	// channelTo[v][w] is the index of w in v's inbox, i.e. the channel on
	// which w must send to v.
	channelTo := make([]map[int]int, n)
	for v := 0; v < n; v++ {
		channelTo[v] = make(map[int]int, g.Degree(v))
		for i, w := range g.Neighbors(v) {
			channelTo[v][w] = i
		}
	}

	type verdict struct {
		vertex int
		accept bool
	}
	verdicts := make(chan verdict, n)

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			// Round 1: send own (id, certificate) to every neighbour.
			for _, w := range g.Neighbors(v) {
				select {
				case inbox[w][channelTo[w][v]] <- message{id: g.IDOf(v), cert: a[v]}:
				case <-ctx.Done():
					return
				}
			}
			// Receive from every neighbour and assemble the radius-1 view.
			view := cert.View{ID: g.IDOf(v), Cert: a[v]}
			view.Neighbors = make([]cert.NeighborView, 0, g.Degree(v))
			for i := range inbox[v] {
				select {
				case m := <-inbox[v][i]:
					view.Neighbors = append(view.Neighbors, cert.NeighborView{ID: m.id, Cert: m.cert})
				case <-ctx.Done():
					return
				}
			}
			sort.Slice(view.Neighbors, func(i, j int) bool {
				return view.Neighbors[i].ID < view.Neighbors[j].ID
			})
			select {
			case verdicts <- verdict{vertex: v, accept: s.Verify(view)}:
			case <-ctx.Done():
			}
		}(v)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Channels are buffered, so the workers blocked on ctx will unwind;
		// wait for them so no goroutine leaks past this call.
		wg.Wait()
		return Report{}, fmt.Errorf("netsim: %w", ctx.Err())
	}
	close(verdicts)

	rep := Report{Accepted: true, Rounds: 1}
	for vd := range verdicts {
		if !vd.accept {
			rep.Accepted = false
			rep.Rejecters = append(rep.Rejecters, vd.vertex)
		}
	}
	sort.Ints(rep.Rejecters)
	return rep, nil
}

// ProveAndRun is the distributed counterpart of cert.ProveAndVerify.
func ProveAndRun(ctx context.Context, g *graph.Graph, s cert.Scheme) (cert.Assignment, Report, error) {
	a, err := s.Prove(g)
	if err != nil {
		return nil, Report{}, fmt.Errorf("netsim: %s: prove: %w", s.Name(), err)
	}
	rep, err := Run(ctx, g, s, a)
	if err != nil {
		return nil, Report{}, err
	}
	return a, rep, nil
}
