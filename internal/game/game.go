// Package game implements the cops-and-robber characterization of
// treedepth used in the proof of Lemma 7.3 (via [33]) and illustrated by
// Figure 4: immobile cops are placed one by one; before each placement
// the position is announced and the robber may move anywhere in its
// cop-free region; the minimum number of cops that guarantees a capture
// equals the treedepth.
//
// The optimal cop strategy is exactly an optimal elimination tree — place
// the root of the robber's current component — and the optimal robber
// strategy is to flee into a component of maximum treedepth. The package
// exposes both, plus a playable simulation used by the Figure 4
// experiment.
package game

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/treedepth"
)

// Move records one round of the game.
type Move struct {
	Announced int // vertex announced (and then occupied) by the cops
	RobberTo  int // robber's position after its reaction
}

// Robber chooses how to react to an announced cop placement. options is
// the robber's current cop-free component (sorted, always containing its
// current position), announced is the vertex the cops will occupy next.
// The returned vertex must be in options; returning the announced vertex
// (or staying on it) loses immediately.
type Robber interface {
	React(g *graph.Graph, options []int, announced, current int) int
}

// StaticRobber never moves.
type StaticRobber struct{}

// React implements Robber.
func (StaticRobber) React(_ *graph.Graph, _ []int, _, current int) int { return current }

// GreedyRobber flees into the largest component that survives the
// announced placement.
type GreedyRobber struct{}

// React implements Robber.
func (GreedyRobber) React(g *graph.Graph, options []int, announced, current int) int {
	comps := splitComponents(g, options, announced)
	best := -1
	bestSize := -1
	for _, c := range comps {
		if len(c) > bestSize {
			bestSize = len(c)
			best = c[0]
		}
	}
	if best == -1 {
		return current // nowhere to go: captured next placement
	}
	return best
}

// OptimalRobber flees into a component of maximum treedepth, which forces
// the cops to spend exactly td(G) placements against the elimination-tree
// strategy.
type OptimalRobber struct{}

// React implements Robber.
func (OptimalRobber) React(g *graph.Graph, options []int, announced, current int) int {
	comps := splitComponents(g, options, announced)
	best := -1
	bestTD := -1
	for _, c := range comps {
		sub, _ := g.InducedSubgraph(c)
		td, _, err := treedepth.Exact(sub)
		if err != nil {
			continue
		}
		if td > bestTD {
			bestTD = td
			best = c[0]
		}
	}
	if best == -1 {
		return current
	}
	return best
}

// RandomRobber moves to a uniformly random surviving vertex.
type RandomRobber struct{ Rng *rand.Rand }

// React implements Robber.
func (r RandomRobber) React(g *graph.Graph, options []int, announced, current int) int {
	var pool []int
	for _, v := range options {
		if v != announced {
			pool = append(pool, v)
		}
	}
	if len(pool) == 0 {
		return current
	}
	return pool[r.Rng.Intn(len(pool))]
}

// Value returns the game value — the number of cops needed against
// optimal play — which equals the treedepth.
func Value(g *graph.Graph) (int, error) {
	td, _, err := treedepth.Exact(g)
	return td, err
}

// Play simulates the game with the optimal (elimination-tree) cop
// strategy against the given robber, which starts on any vertex of its
// choosing (the robber is given the whole graph as its first region and
// reacts to the first announcement). It returns the number of cops used
// and the move history.
func Play(g *graph.Graph, robber Robber) (int, []Move, error) {
	if g.N() == 0 || !g.Connected() {
		return 0, nil, fmt.Errorf("game: need a connected non-empty graph")
	}
	region := make([]int, g.N())
	for i := range region {
		region[i] = i
	}
	// The robber implicitly starts anywhere; track a current position that
	// the robber updates on each announcement. Start on region[0].
	current := region[0]
	var history []Move
	cops := 0
	for rounds := 0; rounds <= g.N(); rounds++ {
		sub, oldIdx := g.InducedSubgraph(region)
		_, model, err := treedepth.Exact(sub)
		if err != nil {
			return 0, nil, err
		}
		announced := oldIdx[model.Root()]
		moved := robber.React(g, region, announced, current)
		if !contains(region, moved) {
			return 0, nil, fmt.Errorf("game: robber moved to %d outside its region", moved)
		}
		current = moved
		cops++
		history = append(history, Move{Announced: announced, RobberTo: current})
		if current == announced {
			return cops, history, nil // captured
		}
		region = componentOf(g, region, announced, current)
		if len(region) == 0 {
			return cops, history, nil
		}
	}
	return 0, nil, fmt.Errorf("game: did not terminate within n rounds (cop strategy broken)")
}

// splitComponents returns the components of region minus the announced
// vertex.
func splitComponents(g *graph.Graph, region []int, announced int) [][]int {
	in := map[int]bool{}
	for _, v := range region {
		in[v] = true
	}
	delete(in, announced)
	seen := map[int]bool{}
	var out [][]int
	for _, s := range region {
		if s == announced || seen[s] {
			continue
		}
		var c []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c = append(c, u)
			for _, w := range g.Neighbors(u) {
				if in[w] && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Ints(c)
		out = append(out, c)
	}
	return out
}

// componentOf returns the component of region minus announced containing
// the robber.
func componentOf(g *graph.Graph, region []int, announced, robber int) []int {
	for _, c := range splitComponents(g, region, announced) {
		if contains(c, robber) {
			return c
		}
	}
	return nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
