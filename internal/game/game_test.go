package game

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/treedepth"
)

func TestValueEqualsTreedepth(t *testing.T) {
	graphs := []*graph.Graph{
		graphgen.Path(7), graphgen.Cycle(8), graphgen.Clique(4), graphgen.Star(6),
	}
	for _, g := range graphs {
		v, err := Value(g)
		if err != nil {
			t.Fatal(err)
		}
		td, _, err := treedepth.Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if v != td {
			t.Errorf("%v: game value %d != treedepth %d", g, v, td)
		}
	}
}

func TestOptimalCopsNeverExceedTreedepth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	robbers := []Robber{StaticRobber{}, GreedyRobber{}, OptimalRobber{}, RandomRobber{Rng: rng}}
	graphs := []*graph.Graph{
		graphgen.Path(9), graphgen.Cycle(8), graphgen.Star(7),
		graphgen.CompleteBinaryTree(3), graphgen.RandomTree(12, rng),
	}
	for _, g := range graphs {
		td, _, err := treedepth.Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range robbers {
			cops, history, err := Play(g, r)
			if err != nil {
				t.Fatalf("%v vs %T: %v", g, r, err)
			}
			if cops > td {
				t.Errorf("%v vs %T: %d cops > treedepth %d (history %v)", g, r, cops, td, history)
			}
		}
	}
}

func TestOptimalRobberForcesTreedepth(t *testing.T) {
	graphs := []*graph.Graph{
		graphgen.Path(7), graphgen.Cycle(8), graphgen.Clique(4),
		graphgen.CompleteBinaryTree(3),
	}
	for _, g := range graphs {
		td, _, err := treedepth.Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		cops, _, err := Play(g, OptimalRobber{})
		if err != nil {
			t.Fatal(err)
		}
		if cops != td {
			t.Errorf("%v: optimal robber caught with %d cops, treedepth %d", g, cops, td)
		}
	}
}

// TestFigure4Gadget replays the paper's Figure 4: on the m=1 lower-bound
// gadget (an 8-cycle plus the vertex u adjacent to its V_alpha vertices),
// 5 cops are necessary and sufficient — the first on u, then the binary
// search on the remaining cycle.
func TestFigure4Gadget(t *testing.T) {
	gd, err := graphgen.TreedepthGadget(1, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Value(gd.G)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("Figure 4 gadget: game value %d, want 5", v)
	}
	cops, history, err := Play(gd.G, OptimalRobber{})
	if err != nil {
		t.Fatal(err)
	}
	if cops != 5 {
		t.Errorf("optimal robber on Figure 4 gadget: %d cops, want 5 (history %v)", cops, history)
	}
}

func TestPlayRejectsCheatingRobber(t *testing.T) {
	cheater := robberFunc(func(_ *graph.Graph, _ []int, _, _ int) int { return 99 })
	if _, _, err := Play(graphgen.Path(4), cheater); err == nil {
		t.Fatal("out-of-region move accepted")
	}
}

type robberFunc func(*graph.Graph, []int, int, int) int

func (f robberFunc) React(g *graph.Graph, options []int, announced, current int) int {
	return f(g, options, announced, current)
}

func TestPlayValidatesInput(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	if _, _, err := Play(g, StaticRobber{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}
