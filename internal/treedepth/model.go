package treedepth

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rooted"
)

// IsModel reports whether the rooted tree t (over the same vertex indices
// as g) is an elimination tree of g: every edge of g joins an
// ancestor/descendant pair of t (Definition 3.1).
func IsModel(g *graph.Graph, t *rooted.Tree) bool {
	if t.N() != g.N() {
		return false
	}
	for _, e := range g.Edges() {
		if !t.IsAncestor(e[0], e[1]) && !t.IsAncestor(e[1], e[0]) {
			return false
		}
	}
	return true
}

// ModelDepth returns the depth of the model counted in vertices (a single
// vertex has depth 1), matching the paper's convention that a model of
// depth at most t witnesses treedepth at most t.
func ModelDepth(t *rooted.Tree) int { return t.Height() + 1 }

// IsCoherent reports whether the model is coherent: for every vertex v
// and every child w of v, some vertex in the subtree rooted at w is
// adjacent (in g) to v — the property that guarantees exit vertices exist
// for the Theorem 2.4 certification.
func IsCoherent(g *graph.Graph, t *rooted.Tree) bool {
	for v := 0; v < t.N(); v++ {
		for _, w := range t.Children(v) {
			if !subtreeTouches(g, t, w, v) {
				return false
			}
		}
	}
	return true
}

func subtreeTouches(g *graph.Graph, t *rooted.Tree, subRoot, target int) bool {
	stack := []int{subRoot}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if g.HasEdge(u, target) {
			return true
		}
		stack = append(stack, t.Children(u)...)
	}
	return false
}

// MakeCoherent turns any model of a connected graph into a coherent model
// of the same or smaller depth (Lemma B.1): while some child subtree is
// not adjacent to its parent, re-attach it to the lowest ancestor that is
// adjacent to it. The sum of depths strictly decreases, so the process
// terminates.
func MakeCoherent(g *graph.Graph, t *rooted.Tree) (*rooted.Tree, error) {
	if !IsModel(g, t) {
		return nil, fmt.Errorf("treedepth: MakeCoherent needs a valid model")
	}
	parents := t.Parents()
	for {
		cur, err := rooted.FromParents(parents)
		if err != nil {
			return nil, fmt.Errorf("treedepth: internal: %w", err)
		}
		moved := false
		for v := 0; v < cur.N() && !moved; v++ {
			for _, w := range cur.Children(v) {
				if subtreeTouches(g, cur, w, v) {
					continue
				}
				// Find the lowest strict ancestor of v adjacent to the
				// subtree of w; one exists because g is connected and every
				// edge leaving the subtree goes to an ancestor of w.
				anc := cur.Ancestors(v)[1:] // strict ancestors of v
				target := -1
				for _, a := range anc {
					if subtreeTouches(g, cur, w, a) {
						target = a
						break
					}
				}
				if target == -1 {
					return nil, fmt.Errorf("treedepth: subtree at %d has no ancestor connection; is the graph connected?", w)
				}
				parents[w] = target
				moved = true
				break
			}
		}
		if !moved {
			return cur, nil
		}
	}
}

// FromDFS builds the DFS-tree model of a connected graph rooted at the
// given vertex. Every non-tree edge of a DFS forest is a back edge, so a
// DFS tree is always a valid model — and it is coherent, since each child
// is itself adjacent to its parent. Its depth is only a heuristic upper
// bound on the treedepth.
func FromDFS(g *graph.Graph, root int) (*rooted.Tree, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("treedepth: FromDFS needs a connected graph")
	}
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("treedepth: root %d out of range", root)
	}
	parents := make([]int, g.N())
	for i := range parents {
		parents[i] = -2
	}
	parents[root] = -1
	// A genuine depth-first traversal (frame stack with per-vertex
	// neighbour cursors). A naive push-stack "DFS" would create cross
	// edges between siblings, which are not ancestor/descendant pairs and
	// would break the model property.
	type frame struct{ v, idx int }
	visited := make([]bool, g.N())
	visited[root] = true
	stack := []frame{{v: root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		nbs := g.Neighbors(f.v)
		if f.idx < len(nbs) {
			w := nbs[f.idx]
			f.idx++
			if !visited[w] {
				visited[w] = true
				parents[w] = f.v
				stack = append(stack, frame{v: w})
			}
			continue
		}
		stack = stack[:len(stack)-1]
	}
	return rooted.FromParents(parents)
}

// BestDFSModel tries a DFS model from every vertex and returns the
// shallowest one — a cheap heuristic prover for graphs beyond ExactLimit.
func BestDFSModel(g *graph.Graph) (*rooted.Tree, error) {
	var best *rooted.Tree
	for root := 0; root < g.N(); root++ {
		t, err := FromDFS(g, root)
		if err != nil {
			return nil, err
		}
		if best == nil || ModelDepth(t) < ModelDepth(best) {
			best = t
		}
	}
	if best == nil {
		return nil, fmt.Errorf("treedepth: empty graph")
	}
	return best, nil
}

// FromParentSlice wraps a generator-provided witness (parent array) as a
// model, validating it against the graph.
func FromParentSlice(g *graph.Graph, parents []int) (*rooted.Tree, error) {
	t, err := rooted.FromParents(parents)
	if err != nil {
		return nil, err
	}
	if !IsModel(g, t) {
		return nil, fmt.Errorf("treedepth: parent array is not a model of the graph")
	}
	return t, nil
}
