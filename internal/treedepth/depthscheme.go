package treedepth

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/rooted"
)

// RootedDepthScheme certifies, under the promise that the input graph is
// a tree, that the tree has depth at most K from some root — the contrast
// result the paper mentions after Theorem 2.5: unlike treedepth, tree
// depth needs only O(log K) bits (a distance-to-root counter), with no
// dependence on n.
type RootedDepthScheme struct{ K int }

var _ cert.Scheme = RootedDepthScheme{}

// Name implements cert.Scheme.
func (s RootedDepthScheme) Name() string { return fmt.Sprintf("tree-depth<=%d", s.K) }

// Holds implements cert.Scheme: some vertex has eccentricity at most K —
// equivalently the tree's radius is at most K.
func (s RootedDepthScheme) Holds(g *graph.Graph) (bool, error) {
	if !g.IsTree() {
		return false, fmt.Errorf("treedepth: %s: input is not a tree (promise violated)", s.Name())
	}
	for v := 0; v < g.N(); v++ {
		if g.Eccentricity(v) <= s.K {
			return true, nil
		}
	}
	return false, nil
}

// Prove implements cert.Scheme: root at a center and store exact
// distances, each at most K, on ceil(log2(K+1)) bits via uvarint.
func (s RootedDepthScheme) Prove(g *graph.Graph) (cert.Assignment, error) {
	holds, err := s.Holds(g)
	if err != nil {
		return nil, err
	}
	if !holds {
		return nil, fmt.Errorf("treedepth: %s: no root within depth bound", s.Name())
	}
	centers, err := rooted.Centers(g)
	if err != nil {
		return nil, err
	}
	dist := g.BFSFrom(centers[0])
	a := make(cert.Assignment, g.N())
	for v := 0; v < g.N(); v++ {
		var w bitio.Writer
		w.WriteUvarint(uint64(dist[v]))
		a[v] = w.Clone()
	}
	return a, nil
}

// Verify implements cert.Scheme. On a tree, exact distances self-validate:
// the unique distance-0 vertex is the root, every other vertex needs a
// neighbour one closer, and no two adjacent vertices may claim the same
// distance.
func (s RootedDepthScheme) Verify(v cert.View) bool {
	d, ok := decodeDist(v.Cert)
	if !ok || d > uint64(s.K) {
		return false
	}
	hasParent := false
	for _, nb := range v.Neighbors {
		nd, ok := decodeDist(nb.Cert)
		if !ok {
			return false
		}
		switch {
		case nd == d-1 && d > 0:
			hasParent = true
		case nd == d+1:
			// child
		default:
			return false
		}
	}
	return d == 0 || hasParent
}

func decodeDist(c cert.Certificate) (uint64, bool) {
	r := bitio.NewReader(c)
	d, err := r.ReadUvarint()
	if err != nil || r.Remaining() != 0 {
		return 0, false
	}
	return d, true
}
