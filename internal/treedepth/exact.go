// Package treedepth implements the treedepth machinery of the paper:
// elimination trees (models, Definition 3.1), coherent models (Lemma B.1),
// exact treedepth computation with optimal model extraction (which is also
// the cops-and-robber strategy of Lemma 7.3 / [33]), closed forms for
// paths and cycles, decomposition rules, and the certification scheme of
// Theorem 2.4: treedepth <= t with O(t log n)-bit certificates.
package treedepth

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/graph"
	"repro/internal/rooted"
)

// ExactLimit is the largest graph the exact solver accepts; components
// are represented as 64-bit masks and the recursion with memoization is
// exponential in the worst case.
const ExactLimit = 64

// Exact computes the exact treedepth of a connected graph and an optimal
// elimination tree witnessing it. The recursion is the textbook one —
// td(G) = 1 + min over v of max over components C of G-v of td(C) —
// with memoization on vertex subsets (bitmasks) and branch-and-bound
// pruning; the recursion tree is exactly an optimal cop strategy in the
// game characterization used by Lemma 7.3.
func Exact(g *graph.Graph) (int, *rooted.Tree, error) {
	if g.N() == 0 {
		return 0, nil, fmt.Errorf("treedepth: empty graph")
	}
	if !g.Connected() {
		return 0, nil, fmt.Errorf("treedepth: Exact needs a connected graph")
	}
	if g.N() > ExactLimit {
		return 0, nil, fmt.Errorf("treedepth: exact computation limited to %d vertices, got %d", ExactLimit, g.N())
	}
	s := newSolver(g)
	full := fullMask(g.N())
	depth := s.rec(full, g.N()+1)
	parents := make([]int, g.N())
	for i := range parents {
		parents[i] = -2
	}
	s.applyRoot(full, parents)
	t, err := rooted.FromParents(parents)
	if err != nil {
		return 0, nil, fmt.Errorf("treedepth: internal: %w", err)
	}
	return depth, t, nil
}

// solution caches the treedepth of a component and the root chosen for it.
type solution struct {
	depth int
	root  int8
}

type solver struct {
	g   *graph.Graph
	adj []uint64 // adjacency masks
	// memo maps a component mask to its solved treedepth and chosen root.
	memo map[uint64]solution
}

func newSolver(g *graph.Graph) *solver {
	adj := make([]uint64, g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			adj[v] |= 1 << uint(w)
		}
	}
	return &solver{g: g, adj: adj, memo: map[uint64]solution{}}
}

func fullMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// rec computes the treedepth of the connected component `comp` (a vertex
// mask). budget is a strict upper bound for pruning: when the true depth
// is >= budget, rec returns budget and memoizes nothing.
func (s *solver) rec(comp uint64, budget int) int {
	n := bits.OnesCount64(comp)
	if n == 1 {
		return 1
	}
	if budget <= 1 {
		return budget
	}
	if sol, ok := s.memo[comp]; ok {
		if sol.depth < budget {
			return sol.depth
		}
		return budget
	}
	// Candidate order: high degree within the component first.
	type cand struct{ v, deg int }
	cands := make([]cand, 0, n)
	for m := comp; m != 0; m &= m - 1 {
		v := bits.TrailingZeros64(m)
		cands = append(cands, cand{v, bits.OnesCount64(s.adj[v] & comp)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].deg > cands[j].deg })

	best := budget
	bestRoot := -1
	for _, c := range cands {
		if best <= 2 {
			break // cannot beat depth 2 on a multi-vertex component
		}
		rest := comp &^ (1 << uint(c.v))
		worst := 0
		for sub := range s.componentsOf(rest) {
			d := s.rec(sub, best-1)
			if d > worst {
				worst = d
			}
			if 1+worst >= best {
				worst = -1
				break
			}
		}
		if worst < 0 {
			continue
		}
		if 1+worst < best {
			best = 1 + worst
			bestRoot = c.v
		}
	}
	if bestRoot == -1 {
		return budget
	}
	s.memo[comp] = solution{depth: best, root: int8(bestRoot)}
	return best
}

// componentsOf iterates the connected components of the vertex mask.
// Implemented as a map-free generator via a channel-less callback pattern:
// it returns a map used as a set for simplicity (component masks are
// unique keys).
func (s *solver) componentsOf(mask uint64) map[uint64]struct{} {
	out := make(map[uint64]struct{})
	remaining := mask
	for remaining != 0 {
		seed := uint64(1) << uint(bits.TrailingZeros64(remaining))
		comp := seed
		frontier := seed
		for frontier != 0 {
			next := uint64(0)
			for m := frontier; m != 0; m &= m - 1 {
				v := bits.TrailingZeros64(m)
				next |= s.adj[v] & mask &^ comp
			}
			comp |= next
			frontier = next
		}
		out[comp] = struct{}{}
		remaining &^= comp
	}
	return out
}

// applyRoot writes an optimal elimination tree of comp into parents using
// the memoized root choices; the root of comp gets parent -1 and callers
// re-point it afterwards.
func (s *solver) applyRoot(comp uint64, parents []int) {
	if bits.OnesCount64(comp) == 1 {
		parents[bits.TrailingZeros64(comp)] = -1
		return
	}
	sol, ok := s.memo[comp]
	if !ok {
		// Solve on demand (cheap thanks to the shared memo).
		s.rec(comp, bits.OnesCount64(comp)+1)
		sol = s.memo[comp]
	}
	root := int(sol.root)
	parents[root] = -1
	for sub := range s.componentsOf(comp &^ (1 << uint(root))) {
		s.applyRoot(sub, parents)
		// Re-point the sub-root at our root.
		for v := range parents {
			if parents[v] == -1 && sub&(1<<uint(v)) != 0 {
				parents[v] = root
			}
		}
	}
}

// PathTreedepth returns td(P_n) = floor(log2(n)) + 1 (n >= 1), the closed
// form behind Figure 1 (P_7 has treedepth 3).
func PathTreedepth(n int) int {
	if n < 1 {
		return 0
	}
	return bits.Len(uint(n))
}

// CycleTreedepth returns td(C_n) = 1 + td(P_{n-1}) for n >= 3: the root
// of an optimal elimination tree breaks the cycle into a path, and
// removing any vertex of C_n leaves P_{n-1}.
func CycleTreedepth(n int) int {
	if n < 3 {
		return 0
	}
	return 1 + PathTreedepth(n-1)
}

// OptimalPathModel returns the divide-and-conquer elimination tree of P_n
// (vertices 0..n-1 in path order) of depth exactly PathTreedepth(n): the
// middle vertex is the root, halves recurse — the construction drawn in
// Figure 1.
func OptimalPathModel(n int) (*rooted.Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("treedepth: OptimalPathModel needs n >= 1")
	}
	parents := make([]int, n)
	var build func(lo, hi, parent int)
	build = func(lo, hi, parent int) {
		if lo > hi {
			return
		}
		mid := (lo + hi) / 2
		parents[mid] = parent
		build(lo, mid-1, mid)
		build(mid+1, hi, mid)
	}
	build(0, n-1, -1)
	return rooted.FromParents(parents)
}

// UnionTreedepth is the disjoint-union rule td(G1 ∪ G2) = max(td G1, td G2).
func UnionTreedepth(depths ...int) int {
	best := 0
	for _, d := range depths {
		if d > best {
			best = d
		}
	}
	return best
}

// ApexTreedepth is the universal-vertex rule td(G + apex) = td(G) + 1: an
// apex adjacent to every vertex must be compared with everything, so it
// heads an optimal elimination tree.
func ApexTreedepth(inner int) int { return inner + 1 }
