package treedepth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/rooted"
)

func TestPathTreedepthClosedForm(t *testing.T) {
	// Known values: td(P_1)=1, P_2..P_3 = 2, P_4..P_7 = 3, P_8..P_15 = 4.
	want := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 15: 4, 16: 5}
	for n, exp := range want {
		if got := PathTreedepth(n); got != exp {
			t.Errorf("PathTreedepth(%d) = %d, want %d", n, got, exp)
		}
	}
}

func TestCycleTreedepthClosedForm(t *testing.T) {
	// td(C_3)=3 (K3), td(C_8)=4 and td(C_16)=5 (Lemma 7.3's arithmetic).
	want := map[int]int{3: 3, 4: 3, 5: 4, 8: 4, 16: 5}
	for n, exp := range want {
		if got := CycleTreedepth(n); got != exp {
			t.Errorf("CycleTreedepth(%d) = %d, want %d", n, got, exp)
		}
	}
}

func TestExactAgainstClosedForms(t *testing.T) {
	for n := 1; n <= 16; n++ {
		td, model, err := Exact(graphgen.Path(n))
		if err != nil {
			t.Fatal(err)
		}
		if td != PathTreedepth(n) {
			t.Errorf("Exact(P_%d) = %d, want %d", n, td, PathTreedepth(n))
		}
		if !IsModel(graphgen.Path(n), model) || ModelDepth(model) != td {
			t.Errorf("P_%d: witness invalid or wrong depth", n)
		}
	}
	for n := 3; n <= 12; n++ {
		td, model, err := Exact(graphgen.Cycle(n))
		if err != nil {
			t.Fatal(err)
		}
		if td != CycleTreedepth(n) {
			t.Errorf("Exact(C_%d) = %d, want %d", n, td, CycleTreedepth(n))
		}
		if !IsModel(graphgen.Cycle(n), model) {
			t.Errorf("C_%d: witness invalid", n)
		}
	}
}

func TestExactOnKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K1", graphgen.Clique(1), 1},
		{"K4", graphgen.Clique(4), 4},
		{"K5", graphgen.Clique(5), 5},
		{"star6", graphgen.Star(6), 2},
		// td of the 3x3 grid is 5 (verified independently by exhaustive
		// search): any root leaves a component containing C8 or similar.
		{"grid3x3", graphgen.Grid(3, 3), 5},
		{"CBT3", graphgen.CompleteBinaryTree(3), 3},
	}
	for _, c := range cases {
		got, model, err := Exact(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: td = %d, want %d", c.name, got, c.want)
		}
		if !IsModel(c.g, model) || ModelDepth(model) != got {
			t.Errorf("%s: witness broken", c.name)
		}
	}
}

func TestExactRejectsBadInput(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	if _, _, err := Exact(g); err == nil {
		t.Error("disconnected accepted")
	}
	if _, _, err := Exact(graph.New(0)); err == nil {
		t.Error("empty accepted")
	}
}

func TestApexAndUnionRules(t *testing.T) {
	// Apex rule validated against Exact: star = K1 + apex? No — star's
	// apex is adjacent to an edgeless graph. Use cliques: K_{n+1} = K_n + apex.
	for n := 1; n <= 4; n++ {
		tdInner, _, err := Exact(graphgen.Clique(n))
		if err != nil {
			t.Fatal(err)
		}
		tdOuter, _, err := Exact(graphgen.Clique(n + 1))
		if err != nil {
			t.Fatal(err)
		}
		if ApexTreedepth(tdInner) != tdOuter {
			t.Errorf("apex rule fails: K%d=%d K%d=%d", n, tdInner, n+1, tdOuter)
		}
	}
	// C_8 plus an apex adjacent to everything: treedepth 5 (Lemma 7.3's
	// one-cycle case has the apex adjacent to only half the cycle but the
	// value matches the full-apex bound here).
	g := graphgen.Cycle(8)
	apex := graph.New(9)
	for _, e := range g.Edges() {
		apex.MustAddEdge(e[0], e[1])
	}
	for v := 0; v < 8; v++ {
		apex.MustAddEdge(8, v)
	}
	td, _, err := Exact(apex)
	if err != nil {
		t.Fatal(err)
	}
	if td != ApexTreedepth(CycleTreedepth(8)) {
		t.Errorf("C8+apex: td=%d, want %d", td, ApexTreedepth(CycleTreedepth(8)))
	}
	if UnionTreedepth(2, 5, 3) != 5 {
		t.Error("union rule wrong")
	}
}

func TestOptimalPathModel(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 100} {
		m, err := OptimalPathModel(n)
		if err != nil {
			t.Fatal(err)
		}
		if ModelDepth(m) != PathTreedepth(n) {
			t.Errorf("n=%d: model depth %d, want %d", n, ModelDepth(m), PathTreedepth(n))
		}
		if !IsModel(graphgen.Path(n), m) {
			t.Errorf("n=%d: not a model of the path", n)
		}
	}
}

func TestFigure1Example(t *testing.T) {
	// Figure 1: P_7 has treedepth 3, witnessed by the middle-vertex model.
	td, _, err := Exact(graphgen.Path(7))
	if err != nil {
		t.Fatal(err)
	}
	if td != 3 {
		t.Errorf("Figure 1: td(P7) = %d, want 3", td)
	}
}

func TestIsModelAndCoherence(t *testing.T) {
	g := graphgen.Path(7)
	m, err := OptimalPathModel(7)
	if err != nil {
		t.Fatal(err)
	}
	if !IsModel(g, m) {
		t.Fatal("optimal path model rejected")
	}
	if !IsCoherent(g, m) {
		t.Fatal("divide-and-conquer path model should be coherent")
	}
	// A model of the star K_{1,3} rooted at leaf 1 with leaves 0 and 2 as
	// siblings is invalid: the center 0 and leaf 2 are adjacent but
	// unrelated in the tree. (Note a chain rooted at the center IS a
	// valid — if wasteful — model, since the root is everyone's ancestor.)
	star := graphgen.Star(4)
	badModel, err := rooted.FromParents([]int{1, -1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if IsModel(star, badModel) {
		t.Fatal("sibling center/leaf edge accepted as model of star")
	}
}

func TestMakeCoherent(t *testing.T) {
	// Build an incoherent model of P_3: root 0 (middle of list), with 1
	// under 2: P3 edges (0-1, 1-2). Model: root 1... craft: vertices
	// 0-1-2 path; model root 0 with child 2, grandchild 1: edges 0-1 (anc),
	// 1-2 (anc) — valid; child subtree of 2 = {2,1}: does it touch 0? 1
	// touches 0 ✓ coherent already. Try: root 0, children 1 and... P3 needs
	// chain. Use P5 with a wasteful deep model instead:
	g := graphgen.Path(5)
	// Model: chain 0<-1<-2<-3<-4 rooted at 0 (valid: path edges are
	// parent-child... edges (i,i+1) all parent-child ✓ coherent trivially).
	// For incoherence we need a child subtree not touching its parent:
	// root 2; child 1 with subtree {1,0}; child 3 with subtree {3,4}:
	// coherent. Hand-build an incoherent one: root 0 with child 4 whose
	// subtree {4,3,2,1} hangs as chain 4<-3<-2<-1: edge 0-? subtree of 4
	// touches 0 via 1 ✓... chain parents: 1's parent 2, 2's parent 3, 3's
	// parent 4, 4's parent 0. Child subtree of 3 under 4: {3,2,1}: touches
	// 4 via 3 ✓. Not easy to make incoherent on a path with a valid model.
	// Use a star: center 0, leaves 1..4. Model: chain 1<-0<-2... leaves
	// under each other are not ancestor-related to center... Model must
	// keep all edges ancestor-related: any model of a star is: some chain
	// containing 0 with the rest below 0... Model: root 1, child 0,
	// children of 0: 2,3,4: subtree {0,2,3,4} of child 0 touches 1 via 0 ✓.
	// Chain root 1, child 2, child 0, then 3,4 under 0: edge 0-2 ✓ anc,
	// 0-1 ✓ anc; subtree of 2 = {2,0,3,4} touches 1 ✓ via 0? 0 adjacent to
	// 1 ✓. subtree of 0 = {0,3,4} touches 2 ✓. Coherent again!
	// Incoherent example: P2 with an extra isolated-ish shape is hard;
	// take C4 with model root 0, chain 0<-1<-2<-3? Edges 0-1,1-2,2-3 ✓
	// chain; 3-0 ✓ ancestor. Subtree of child 1 = {1,2,3} touches 0 ✓.
	// Deep chain models are always coherent. The classic incoherent case:
	// root r with TWO children where one child's subtree only attaches
	// higher. Take P5, model: root 2 (middle), child 1 with child 0, and
	// child 4 with child 3: subtree of 4 = {4,3}: edges from {3,4} to 2?
	// 3-2 ✓. Coherent. Swap: child 3 with child 4 under it, on the other
	// side child 0 with child 1: subtree {0,1} touches 2 via 1 ✓.
	// Construct genuinely incoherent: graph P4 0-1-2-3; model root 1,
	// child 0; child 2 with child 3 — coherent. Model root 1, child 3
	// with chain 3<-2... wait 3's parent 1: edge(1,3)? Not an edge — but
	// models only need graph edges to be ancestor-related, tree edges
	// need not be graph edges! Model: root 1; child 3; 3's child 2; 2's
	// child 0?? 0's ancestors: 2,3,1: edge 0-1 ✓ ancestor. Edge 2-3 ✓,
	// 1-2 ✓. Valid model. Coherence: child subtree of 3 under root 1 =
	// {3,2,0}: touches 1? 2-1 ✓ yes... child subtree of 2 under 3 =
	// {2,0}: touches 3? 2-3 ✓. child 0 under 2: touches 2? No! 0's only
	// edge is 0-1. INCOHERENT.
	g = graphgen.Path(4)
	bad, err := rooted.FromParents([]int{2, -1, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !IsModel(g, bad) {
		t.Fatal("setup: expected a valid model")
	}
	if IsCoherent(g, bad) {
		t.Fatal("setup: expected an incoherent model")
	}
	fixed, err := MakeCoherent(g, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !IsModel(g, fixed) || !IsCoherent(g, fixed) {
		t.Fatal("MakeCoherent failed to produce a coherent model")
	}
	if ModelDepth(fixed) > ModelDepth(bad) {
		t.Errorf("coherence increased depth: %d > %d", ModelDepth(fixed), ModelDepth(bad))
	}
}

func TestFromDFSIsValidCoherentModel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	graphs := []*graph.Graph{
		graphgen.Cycle(7),
		graphgen.Clique(5),
		graphgen.Grid(3, 4),
		graphgen.RandomConnected(20, 15, rng),
	}
	for _, g := range graphs {
		for root := 0; root < g.N(); root += 3 {
			m, err := FromDFS(g, root)
			if err != nil {
				t.Fatal(err)
			}
			if !IsModel(g, m) {
				t.Fatalf("DFS tree from %d is not a model of %v", root, g)
			}
			if !IsCoherent(g, m) {
				t.Fatalf("DFS tree from %d is not coherent", root)
			}
		}
	}
}

func TestFromDFSTriangleRegression(t *testing.T) {
	// A push-stack pseudo-DFS would make both 1 and 2 children of 0 in a
	// triangle, leaving the 1-2 edge between siblings: not a model.
	g := graphgen.Clique(3)
	m, err := FromDFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !IsModel(g, m) {
		t.Fatal("DFS of triangle is not a model — sibling cross edge")
	}
	if ModelDepth(m) != 3 {
		t.Errorf("triangle DFS depth = %d, want 3", ModelDepth(m))
	}
}

func TestBoundedTreedepthGeneratorAgreesWithExact(t *testing.T) {
	// Property: the generator's witness bound is respected by Exact.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		tBound := 2 + rng.Intn(3)
		g, parents := graphgen.BoundedTreedepth(n, tBound, 0.5, rng)
		td, _, err := Exact(g)
		if err != nil {
			return false
		}
		if td > tBound {
			return false
		}
		m, err := FromParentSlice(g, parents)
		return err == nil && ModelDepth(m) <= tBound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSchemeCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []struct {
		g *graph.Graph
		t int
	}{
		{graphgen.Path(15), 4},
		{graphgen.Cycle(8), 4},
		{graphgen.Clique(5), 5},
		{graphgen.Star(9), 2},
		{graphgen.Grid(3, 3), 5},
	}
	for i := 0; i < 6; i++ {
		n := 8 + rng.Intn(10)
		tBound := 3 + rng.Intn(2)
		g, _ := graphgen.BoundedTreedepth(n, tBound, 0.4, rng)
		cases = append(cases, struct {
			g *graph.Graph
			t int
		}{g, tBound})
	}
	for i, c := range cases {
		s := &Scheme{T: c.t}
		a, res, err := cert.ProveAndVerify(c.g, s)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !res.Accepted {
			t.Fatalf("case %d (%v, t=%d): rejected at %v", i, c.g, c.t, res.Rejecters)
		}
		if a.MaxBits() == 0 {
			t.Errorf("case %d: empty certificates?", i)
		}
	}
}

func TestSchemeProveRefusesTightNoInstance(t *testing.T) {
	// td(P_8) = 4 > 3.
	s := &Scheme{T: 3}
	if _, err := s.Prove(graphgen.Path(8)); err == nil {
		t.Fatal("proved td(P8) <= 3")
	}
}

func TestSchemeHolds(t *testing.T) {
	s := &Scheme{T: 3}
	ok, err := s.Holds(graphgen.Path(7))
	if err != nil || !ok {
		t.Errorf("td(P7)<=3: (%v,%v)", ok, err)
	}
	ok, err = s.Holds(graphgen.Path(8))
	if err != nil || ok {
		t.Errorf("td(P8)<=3 should be false: (%v,%v)", ok, err)
	}
}

func TestSchemeSoundnessHonestCertWrongBound(t *testing.T) {
	// An honest certificate for td<=4 must not convince the td<=3 verifier
	// on P_8 (whose treedepth is exactly 4).
	g := graphgen.Path(8)
	honest, err := (&Scheme{T: 4}).Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cert.RunSequential(g, &Scheme{T: 3}, honest)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("depth-4 lists accepted by depth-3 verifier")
	}
}

func TestSchemeSoundnessProbe(t *testing.T) {
	g := graphgen.Path(8) // td = 4
	s := &Scheme{T: 3}
	honest, err := (&Scheme{T: 4}).Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	rep, err := cert.ProbeSoundness(g, s, []cert.Assignment{honest}, honest.MaxBits(), 250, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breaches != 0 {
		t.Fatalf("%d soundness breaches", rep.Breaches)
	}
}

func TestSchemeTamperDetection(t *testing.T) {
	g := graphgen.Grid(3, 3) // treedepth exactly 5
	s := &Scheme{T: 5}
	honest, err := s.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	detected, changed, err := cert.ProbeTamperDetection(g, s, honest, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 || detected < changed*8/10 {
		t.Errorf("tamper detection weak: %d/%d", detected, changed)
	}
}

func TestSchemeWithProvidedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g, parents := graphgen.BoundedTreedepth(80, 4, 0.3, rng)
	s := &Scheme{T: 4, ModelProvider: func(gg *graph.Graph) (*rooted.Tree, error) {
		return FromParentSlice(gg, parents)
	}}
	a, res, err := cert.ProveAndVerify(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("rejected at %v", res.Rejecters)
	}
	// O(t log n): generous bound check.
	if a.MaxBits() > 4*(2*17+40) {
		t.Errorf("certificates too large: %d bits", a.MaxBits())
	}
}

func TestRootedDepthScheme(t *testing.T) {
	// P_7 has radius 3.
	s := RootedDepthScheme{K: 3}
	_, res, err := cert.ProveAndVerify(graphgen.Path(7), s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("P7 radius-3 rejected at %v", res.Rejecters)
	}
	if _, err := (RootedDepthScheme{K: 2}).Prove(graphgen.Path(7)); err == nil {
		t.Fatal("P7 proved radius 2")
	}
	// Soundness: radius-3 certificates against the K=2 verifier.
	honest, err := s.Prove(graphgen.Path(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err = cert.RunSequential(graphgen.Path(7), RootedDepthScheme{K: 2}, honest)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("radius-3 certificate accepted by radius-2 verifier")
	}
	if _, err := s.Holds(graphgen.Cycle(4)); err == nil {
		t.Fatal("non-tree accepted")
	}
}

func BenchmarkExactGrid33(b *testing.B) {
	g := graphgen.Grid(3, 3)
	for i := 0; i < b.N; i++ {
		if _, _, err := Exact(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchemeProve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, parents := graphgen.BoundedTreedepth(200, 5, 0.3, rng)
	s := &Scheme{T: 5, ModelProvider: func(gg *graph.Graph) (*rooted.Tree, error) {
		return FromParentSlice(gg, parents)
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Prove(g); err != nil {
			b.Fatal(err)
		}
	}
}
