package treedepth

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/rooted"
)

// Scheme is the Theorem 2.4 certification: "the graph has treedepth at
// most T", with O(T log n)-bit certificates.
//
// On a yes-instance the prover fixes a coherent elimination tree of depth
// at most T and gives every vertex v at depth d:
//
//   - the list of identifiers of its ancestors, from v itself up to the
//     root (d entries);
//   - for every non-root ancestor a of v (including v itself when v is
//     not the root), v's label in a spanning tree of G_a — the subgraph
//     induced by the subtree of a — rooted at an exit vertex of a (a
//     vertex of G_a adjacent to a's parent, which exists by coherence).
//
// The verification is the paper's four steps: list well-formedness,
// suffix compatibility between neighbours, presence of the d-1 spanning
// tree labels, and per-depth spanning tree checks (local correctness,
// same-suffix membership, and the exit-vertex condition at each spanning
// tree root).
type Scheme struct {
	// T is the certified treedepth bound.
	T int
	// ModelProvider, when set, supplies the elimination tree for a graph
	// (e.g. the generator's witness). When nil, Prove computes one: exact
	// for graphs up to ExactLimit vertices, best-DFS heuristic beyond.
	ModelProvider func(g *graph.Graph) (*rooted.Tree, error)
}

var _ cert.Scheme = (*Scheme)(nil)

// TreeLabel is one spanning-tree entry in a certificate: the tree of
// G_a for an ancestor a, rooted at a's exit vertex.
type TreeLabel struct {
	Root   graph.ID // identifier of the exit vertex
	Parent graph.ID // identifier of the parent in the spanning tree
	Dist   uint64   // distance to the exit vertex
}

// Payload is the decoded certificate of one vertex of the Theorem 2.4
// scheme, exported so the kernel scheme of Theorem 2.6 can embed it.
type Payload struct {
	List  []graph.ID  // ancestors, own ID first, root last
	Trees []TreeLabel // Trees[j] is for ancestor List[j], j in [0, len(List)-1)
}

// Name implements cert.Scheme.
func (s *Scheme) Name() string { return fmt.Sprintf("treedepth<=%d", s.T) }

// Holds implements cert.Scheme. For graphs within ExactLimit the exact
// solver decides; beyond it a provided model (or DFS heuristic) may prove
// the positive side, and absence of a shallow model is reported as an
// error rather than a false negative.
func (s *Scheme) Holds(g *graph.Graph) (bool, error) {
	if g.N() == 0 || !g.Connected() {
		return false, fmt.Errorf("treedepth: %s: graph must be connected and non-empty", s.Name())
	}
	if g.N() <= ExactLimit {
		td, _, err := Exact(g)
		if err != nil {
			return false, err
		}
		return td <= s.T, nil
	}
	t, err := s.model(g)
	if err != nil {
		return false, err
	}
	if ModelDepth(t) <= s.T {
		return true, nil
	}
	return false, fmt.Errorf("treedepth: %s: no model of depth <= %d found for n=%d (heuristic; exact limited to %d vertices)",
		s.Name(), s.T, g.N(), ExactLimit)
}

func (s *Scheme) model(g *graph.Graph) (*rooted.Tree, error) {
	if s.ModelProvider != nil {
		t, err := s.ModelProvider(g)
		if err != nil {
			return nil, err
		}
		if !IsModel(g, t) {
			return nil, fmt.Errorf("treedepth: provided tree is not a model")
		}
		return t, nil
	}
	if g.N() <= ExactLimit {
		_, t, err := Exact(g)
		return t, err
	}
	return BestDFSModel(g)
}

// Prove implements cert.Scheme.
func (s *Scheme) Prove(g *graph.Graph) (cert.Assignment, error) {
	if g.N() == 0 || !g.Connected() {
		return nil, fmt.Errorf("treedepth: %s: graph must be connected and non-empty", s.Name())
	}
	t, err := s.model(g)
	if err != nil {
		return nil, err
	}
	t, err = MakeCoherent(g, t)
	if err != nil {
		return nil, err
	}
	if ModelDepth(t) > s.T {
		return nil, fmt.Errorf("treedepth: %s: model depth %d exceeds bound", s.Name(), ModelDepth(t))
	}
	payloads, err := BuildPayloads(g, t)
	if err != nil {
		return nil, err
	}
	a := make(cert.Assignment, g.N())
	for v, p := range payloads {
		a[v] = EncodePayload(p)
	}
	return a, nil
}

// BuildPayloads assembles the per-vertex certificates from a coherent
// model.
func BuildPayloads(g *graph.Graph, t *rooted.Tree) ([]Payload, error) {
	n := g.N()
	payloads := make([]Payload, n)
	depths := t.Depths()
	// Ancestor ID lists.
	for v := 0; v < n; v++ {
		for _, a := range t.Ancestors(v) {
			payloads[v].List = append(payloads[v].List, g.IDOf(a))
		}
		payloads[v].Trees = make([]TreeLabel, len(payloads[v].List)-1)
	}
	// One spanning tree per non-root vertex a: spans G_a, rooted at an
	// exit vertex (a vertex of G_a adjacent to a's parent).
	for a := 0; a < n; a++ {
		par := t.Parent(a)
		if par == -1 {
			continue
		}
		members := t.SubtreeVertices(a)
		sub, oldIdx := g.InducedSubgraph(members)
		exit := -1
		for newIdx, old := range oldIdx {
			if g.HasEdge(old, par) {
				exit = newIdx
				break
			}
		}
		if exit == -1 {
			return nil, fmt.Errorf("treedepth: no exit vertex for subtree of %d (model not coherent)", a)
		}
		parents, dist, err := buildSubBFS(sub, exit)
		if err != nil {
			return nil, fmt.Errorf("treedepth: subtree of %d: %w", a, err)
		}
		for newIdx, old := range oldIdx {
			lbl := TreeLabel{Root: sub.IDOf(exit), Dist: uint64(dist[newIdx])}
			if parents[newIdx] == -1 {
				lbl.Parent = sub.IDOf(newIdx)
			} else {
				lbl.Parent = sub.IDOf(parents[newIdx])
			}
			// Ancestor a sits at position depths[old]-depths[a] in old's
			// ancestor list; its tree label goes into the same slot.
			payloads[old].Trees[depths[old]-depths[a]] = lbl
		}
	}
	return payloads, nil
}

// buildSubBFS is a BFS spanning tree inside an induced subgraph, which is
// connected for subtrees of a coherent model (Remark 1).
func buildSubBFS(sub *graph.Graph, root int) ([]int, []int, error) {
	dist := sub.BFSFrom(root)
	parents := make([]int, sub.N())
	for v := range parents {
		parents[v] = -1
		if dist[v] == -1 {
			return nil, nil, fmt.Errorf("subgraph disconnected at %d", v)
		}
	}
	for v := 0; v < sub.N(); v++ {
		if v == root {
			continue
		}
		for _, w := range sub.Neighbors(v) {
			if dist[w] == dist[v]-1 {
				parents[v] = w
				break
			}
		}
	}
	return parents, dist, nil
}

// EncodePayload serializes a payload as a standalone certificate.
func EncodePayload(p Payload) cert.Certificate {
	var w bitio.Writer
	EncodePayloadTo(&w, p)
	return w.Clone()
}

// EncodePayloadTo appends the payload to an existing bit stream, allowing
// other schemes to concatenate further fields after it.
func EncodePayloadTo(w *bitio.Writer, p Payload) {
	w.WriteUvarint(uint64(len(p.List)))
	for _, id := range p.List {
		w.WriteUvarint(uint64(id))
	}
	for _, tl := range p.Trees {
		w.WriteUvarint(uint64(tl.Root))
		w.WriteUvarint(uint64(tl.Parent))
		w.WriteUvarint(tl.Dist)
	}
}

// DecodePayload parses a standalone payload certificate (the whole
// certificate must be consumed).
func DecodePayload(c cert.Certificate) (Payload, bool) {
	r := bitio.NewReader(c)
	p, ok := DecodePayloadFrom(r)
	if !ok || r.Remaining() != 0 {
		return Payload{}, false
	}
	return p, true
}

// DecodePayloadFrom parses a payload from a bit stream, leaving any
// trailing bits for the caller.
func DecodePayloadFrom(r *bitio.Reader) (Payload, bool) {
	var p Payload
	length, err := r.ReadUvarint()
	if err != nil || length == 0 || length > 1<<16 {
		return p, false
	}
	p.List = make([]graph.ID, length)
	for i := range p.List {
		id, err := r.ReadUvarint()
		if err != nil || id == 0 {
			return p, false
		}
		p.List[i] = graph.ID(id)
	}
	p.Trees = make([]TreeLabel, length-1)
	for i := range p.Trees {
		root, err1 := r.ReadUvarint()
		parent, err2 := r.ReadUvarint()
		dist, err3 := r.ReadUvarint()
		if err1 != nil || err2 != nil || err3 != nil {
			return p, false
		}
		p.Trees[i] = TreeLabel{Root: graph.ID(root), Parent: graph.ID(parent), Dist: dist}
	}
	return p, true
}

// Verify implements cert.Scheme, following the paper's steps (1)-(4).
func (s *Scheme) Verify(v cert.View) bool {
	own, ok := DecodePayload(v.Cert)
	if !ok {
		return false
	}
	neighbors := make([]NeighborPayload, len(v.Neighbors))
	for i, nb := range v.Neighbors {
		np, ok := DecodePayload(nb.Cert)
		if !ok {
			return false
		}
		neighbors[i] = NeighborPayload{ID: nb.ID, P: np}
	}
	return CheckPayloads(s.T, v.ID, own, neighbors)
}

// NeighborPayload pairs a neighbour identifier with its decoded payload.
type NeighborPayload struct {
	ID graph.ID
	P  Payload
}

// CheckPayloads runs the paper's verification steps (1)-(4) on decoded
// payloads. It is the reusable core of Verify, embedded verbatim by the
// kernel certification of Theorem 2.6. It runs once per vertex per round,
// concurrently under the sharded simulator, so it must not allocate.
//
//certlint:hotpath
func CheckPayloads(t int, ownID graph.ID, own Payload, neighbors []NeighborPayload) bool {
	d := len(own.List)
	// Step 1: depth bound, list starts with own identifier, identifiers
	// distinct (honest ancestor lists never repeat). The list is at most t
	// long, so the quadratic scan beats allocating a set per call.
	if d == 0 || d > t || own.List[0] != ownID {
		return false
	}
	for i, id := range own.List {
		for _, prev := range own.List[:i] {
			if prev == id {
				return false
			}
		}
	}
	for _, np := range neighbors {
		if len(np.P.List) == 0 || np.P.List[0] != np.ID {
			return false
		}
	}
	// Step 2: every graph neighbour's list is a suffix of ours or extends
	// ours by a prefix (edges join ancestor/descendant pairs). This also
	// forces agreement on the root identifier.
	for _, np := range neighbors {
		if !suffixRelated(own.List, np.P.List) {
			return false
		}
	}
	// Step 3 is structural: DecodePayload enforced d-1 tree labels.
	// Step 4: per-ancestor spanning tree checks. Trees[j] is the tree of
	// the ancestor at list position j (position 0 is v itself); trees
	// exist for positions 0..d-2 (all non-root ancestors).
	for j := 0; j < d-1; j++ {
		if !verifyTreeSlot(ownID, own, neighbors, j) {
			return false
		}
	}
	return true
}

// verifyTreeSlot checks the spanning tree of the ancestor at list
// position j (the subtree membership test is "shares our (d-j)-suffix",
// i.e. the neighbour's list, which is a suffix or extension of ours,
// contains that ancestor at the same distance from the root).
func verifyTreeSlot(ownID graph.ID, own Payload, neighbors []NeighborPayload, j int) bool {
	d := len(own.List)
	suffixLen := d - j // length of the list suffix identifying G_a
	tl := own.Trees[j]
	if tl.Dist == 0 {
		// v claims to be the exit vertex: its ID must match the tree root
		// and some graph neighbour must be a's parent — the vertex whose
		// entire list equals our (suffixLen-1)-suffix.
		if tl.Root != ownID {
			return false
		}
		for _, np := range neighbors {
			if len(np.P.List) == suffixLen-1 && isSuffix(np.P.List, own.List) {
				return true
			}
		}
		return false
	}
	// Non-root tree vertex: need a graph neighbour in the same subtree
	// (same suffixLen-suffix) whose identifier equals our claimed parent,
	// with the same tree root and distance one less, in the tree slot
	// corresponding to the same ancestor.
	for _, np := range neighbors {
		if np.P.List[0] != tl.Parent {
			continue
		}
		nd := len(np.P.List)
		if nd < suffixLen || !sameSuffix(own.List, np.P.List, suffixLen) {
			continue
		}
		ntl := np.P.Trees[nd-suffixLen]
		if ntl.Root == tl.Root && ntl.Dist == tl.Dist-1 {
			return true
		}
	}
	return false
}

// suffixRelated reports whether one list is a suffix of the other.
func suffixRelated(a, b []graph.ID) bool {
	if len(a) <= len(b) {
		return isSuffix(a, b)
	}
	return isSuffix(b, a)
}

// isSuffix reports whether `short` equals the tail of `long`.
func isSuffix(short, long []graph.ID) bool {
	off := len(long) - len(short)
	if off < 0 {
		return false
	}
	for i := range short {
		if short[i] != long[off+i] {
			return false
		}
	}
	return true
}

// sameSuffix reports whether a and b share their last k entries.
func sameSuffix(a, b []graph.ID, k int) bool {
	if len(a) < k || len(b) < k {
		return false
	}
	for i := 1; i <= k; i++ {
		if a[len(a)-i] != b[len(b)-i] {
			return false
		}
	}
	return true
}
