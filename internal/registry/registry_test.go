package registry

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/compile"

	"repro/internal/cert"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/treewidth"
	"repro/internal/wire"
)

// The default registry must expose every scheme kind of the paper.
func TestDefaultRegistryNames(t *testing.T) {
	want := []string{
		"ct-minor-free", "depth2-fo", "existential-fo", "kernel-mso",
		"pt-minor-free", "tree-fo", "tree-mso", "treedepth", "tw-mso", "universal",
	}
	got := Default().Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// Every entry's Info must be complete enough to drive the /schemes
// listing and the CLI help.
func TestDefaultRegistryInfoComplete(t *testing.T) {
	for _, info := range Default().List() {
		if info.Summary == "" || info.CertBound == "" || info.GraphClass == "" {
			t.Errorf("entry %q has incomplete metadata: %+v", info.Name, info)
		}
	}
}

// Every tree-mso property listed in the enum must actually build and
// certify a suitable instance — the enum and the factory switch must
// never drift apart.
func TestTreeMSOEnumMatchesFactory(t *testing.T) {
	props := TreeMSOProperties()
	if len(props) != 6 {
		t.Fatalf("TreeMSOProperties() = %v, want 6 entries", props)
	}
	for _, p := range props {
		s, err := Default().Build("tree-mso", Params{Property: p})
		if err != nil {
			t.Fatalf("Build(tree-mso, %q): %v", p, err)
		}
		if s.Name() == "" {
			t.Fatalf("tree-mso %q: empty scheme name", p)
		}
	}
	if _, err := Default().Build("tree-mso", Params{Property: "no-such-property"}); err == nil {
		t.Fatal("Build accepted an unknown tree-mso property")
	}
}

// Each built scheme must prove and verify a known yes-instance.
func TestBuildProveVerify(t *testing.T) {
	cases := []struct {
		name   string
		params Params
		graph  *graph.Graph
	}{
		{"tree-mso", Params{Property: "perfect-matching"}, graphgen.Path(8)},
		{"tree-fo", Params{Formula: "forall x. exists y. x ~ y"}, graphgen.Path(6)},
		{"treedepth", Params{T: 3}, graphgen.Path(7)},
		{"kernel-mso", Params{T: 3, Formula: "forall x. exists y. x ~ y"}, graphgen.Path(7)},
		{"pt-minor-free", Params{T: 4}, graphgen.Star(9)},
		{"universal", Params{Property: "connected"}, graphgen.Cycle(5)},
		{"existential-fo", Params{Formula: "exists x. exists y. x ~ y"}, graphgen.Path(4)},
		{"depth2-fo", Params{Formula: "forall x. exists y. x ~ y"}, graphgen.Star(5)},
		{"tw-mso", Params{Property: "tw-bound", T: 2}, graphgen.Cycle(8)},
		{"tw-mso", Params{Property: "3-colorable", T: 2}, graphgen.Cycle(9)},
	}
	for _, tc := range cases {
		s, err := Default().Build(tc.name, tc.params)
		if err != nil {
			t.Fatalf("Build(%s): %v", tc.name, err)
		}
		a, res, err := cert.ProveAndVerify(tc.graph, s)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Accepted {
			t.Fatalf("%s: honest proof rejected at %v", tc.name, res.Rejecters)
		}
		if a.MaxBits() == 0 && tc.name != "universal" {
			t.Logf("%s: zero-bit certificates (allowed but unusual)", tc.name)
		}
	}
}

// Missing or invalid params must be rejected with an informative error.
func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name    string
		params  Params
		wantSub string
	}{
		{"tree-mso", Params{}, "needs a formula or a property"},
		{"tree-mso", Params{Property: "no-such"}, "unknown property"},
		{"tree-mso", Params{Formula: "existsset S. forall x. x in S"}, "outside the tree automaton library"},
		{"tw-mso", Params{Property: "tw-bound"}, "must be positive"},
		{"tw-mso", Params{Property: "no-such", T: 2}, "unknown property"},
		{"tree-fo", Params{}, "missing formula"},
		{"treedepth", Params{}, "must be positive"},
		{"kernel-mso", Params{Formula: "forall x. x = x"}, "must be positive"},
		{"no-such-scheme", Params{}, "unknown scheme"},
		{"tree-fo", Params{Formula: "forall x. ("}, ""},
	}
	for _, tc := range cases {
		_, err := Default().Build(tc.name, tc.params)
		if err == nil {
			t.Fatalf("Build(%s, %+v) succeeded, want error", tc.name, tc.params)
		}
		if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("Build(%s) error = %q, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}

// Registration must reject duplicates and incomplete entries.
func TestRegisterRejects(t *testing.T) {
	r := New()
	ok := Entry{
		Info:  Info{Name: "x"},
		Build: func(Params) (cert.Scheme, error) { return nil, nil },
	}
	if err := r.Register(ok); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register(ok); err == nil {
		t.Fatal("Register accepted a duplicate name")
	}
	if err := r.Register(Entry{Info: Info{Name: "y"}}); err == nil {
		t.Fatal("Register accepted a nil factory")
	}
	if err := r.Register(Entry{Build: ok.Build}); err == nil {
		t.Fatal("Register accepted an unnamed entry")
	}
}

// Cacheable must flag closure-bearing params as graph-specific.
func TestParamsCacheable(t *testing.T) {
	if !(Params{Property: "p", T: 3}).Cacheable() {
		t.Fatal("value-only params reported uncacheable")
	}
	p := Params{PropertyFunc: func(*graph.Graph) (bool, error) { return true, nil }}
	if p.Cacheable() {
		t.Fatal("params with a predicate closure reported cacheable")
	}
	d := Params{DecompProvider: func(*graph.Graph) (*treewidth.Decomposition, error) { return nil, nil }}
	if d.Cacheable() {
		t.Fatal("params with a decomposition witness reported cacheable")
	}
}

// The tw-mso enum and the property library must agree, and a generator
// witness must drive the prover.
func TestTreewidthMSOEntry(t *testing.T) {
	props := TreewidthMSOProperties()
	if len(props) != len(treewidth.Properties()) {
		t.Fatalf("TreewidthMSOProperties() = %v", props)
	}
	e, ok := Default().Lookup("tw-mso")
	if !ok {
		t.Fatal("tw-mso not registered")
	}
	if !e.UsesDecomposition || e.UsesWitness {
		t.Fatalf("tw-mso witness flags wrong: %+v", e.Info)
	}
	g, witness, err := wire.GeneratorSpec{Kind: "partial-k-tree", N: 18, T: 2, Seed: 5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Default().Build("tw-mso", Params{Property: "tw-bound", T: 2, DecompProvider: witness.Decomp})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := cert.ProveAndVerify(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("witness-driven tw-mso proof rejected at %v", res.Rejecters)
	}
}

// TestEnumAndFormulaPathsCertifyIdentically is the acceptance check of the
// formula-first refactor: every previously enum-named property, requested
// by its defining sentence instead, must behave identically end to end —
// same Holds verdict over random instances, and identical certificates on
// yes-instances.
func TestEnumAndFormulaPathsCertifyIdentically(t *testing.T) {
	reg := Default()
	for _, kind := range []string{"tree-mso", "tw-mso", "universal"} {
		for _, alias := range compile.Aliases(kind) {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				var g *graph.Graph
				var params Params
				switch kind {
				case "tree-mso":
					g = graphgen.RandomTree(2+rng.Intn(10), rng)
				case "tw-mso":
					g, _ = graphgen.PartialKTree(6+rng.Intn(10), 2, 0.5, rng)
					params.T = 2
				case "universal":
					// The formula path model-checks MSO sentences by 2^n
					// subset enumeration; stay small.
					g = graphgen.RandomTree(2+rng.Intn(6), rng)
				}
				ep := params
				ep.Property = alias.Name
				fp := params
				fp.Formula = alias.Source()
				enumScheme, err := reg.Build(kind, ep)
				if err != nil {
					t.Fatalf("%s/%s: enum build: %v", kind, alias.Name, err)
				}
				formulaScheme, err := reg.Build(kind, fp)
				if err != nil {
					t.Fatalf("%s/%s: formula build: %v", kind, alias.Name, err)
				}
				eh, eerr := enumScheme.Holds(g)
				fh, ferr := formulaScheme.Holds(g)
				if (eerr == nil) != (ferr == nil) || eh != fh {
					t.Fatalf("%s/%s seed %d: Holds diverges: enum=(%v,%v) formula=(%v,%v)",
						kind, alias.Name, seed, eh, eerr, fh, ferr)
				}
				if eerr != nil || !eh {
					continue
				}
				ea, err := enumScheme.Prove(g)
				if err != nil {
					t.Fatalf("%s/%s seed %d: enum prove: %v", kind, alias.Name, seed, err)
				}
				fa, err := formulaScheme.Prove(g)
				if err != nil {
					t.Fatalf("%s/%s seed %d: formula prove: %v", kind, alias.Name, seed, err)
				}
				for v := range ea {
					if string(ea[v]) != string(fa[v]) {
						t.Fatalf("%s/%s seed %d: certificates diverge at vertex %d", kind, alias.Name, seed, v)
					}
				}
				er, err := cert.RunSequential(g, enumScheme, ea)
				if err != nil {
					t.Fatal(err)
				}
				fr, err := cert.RunSequential(g, formulaScheme, fa)
				if err != nil {
					t.Fatal(err)
				}
				if !er.Accepted || !fr.Accepted {
					t.Fatalf("%s/%s seed %d: honest proofs rejected: enum=%v formula=%v",
						kind, alias.Name, seed, er.Rejecters, fr.Rejecters)
				}
			}
		}
	}
}

// TestFormulaSupersedesEnum checks the precedence rule: when both a
// property and a formula are supplied, the formula drives the build.
func TestFormulaSupersedesEnum(t *testing.T) {
	s, err := Default().Build("tree-mso", Params{Property: "perfect-matching", Formula: "forall x. forall y. x = y"})
	if err != nil {
		t.Fatal(err)
	}
	// HasAtMostOneVertex is FO and not a library automaton: the type
	// compiler names its schemes distinctively.
	if !strings.Contains(s.Name(), "tree-fo-types") {
		t.Fatalf("formula did not supersede the enum: built %q", s.Name())
	}
}
