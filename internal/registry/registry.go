// Package registry is the single source of truth for the certification
// schemes this module implements. Every entry point — the public facade,
// cmd/certify, cmd/certserver and the experiment harness — builds schemes
// through a Registry instead of hand-rolling its own switch statement, so
// adding a scheme (or a tree-mso property) in one place surfaces it
// everywhere: CLI flag help, the HTTP /schemes listing, and the facade.
//
// A registry maps scheme kind names ("tree-mso", "kernel-mso", ...) to
// factories parameterised by a Params struct. Each entry also carries the
// introspection metadata the paper cares about: the certificate-size bound
// and the graph class the scheme assumes.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/automata"
	"repro/internal/cert"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/logic"
	"repro/internal/minor"
	"repro/internal/rooted"
	"repro/internal/treedepth"
	"repro/internal/treewidth"
)

// Param names an argument a scheme factory consumes. Entries declare which
// params they need; Build rejects missing ones and callers (CLI, server)
// use the declaration to validate requests and render help text.
type Param string

const (
	// ParamProperty selects a named property from the entry's Enum list
	// (tree-mso automata, universal predicates).
	ParamProperty Param = "property"
	// ParamFormula is an FO/MSO sentence in the textual syntax of
	// internal/logic.
	ParamFormula Param = "formula"
	// ParamT is the scheme's integer parameter: a treedepth bound for
	// treedepth/kernel-mso, the excluded path/cycle length for the
	// minor-freeness schemes.
	ParamT Param = "t"
)

// Params carries every argument a factory might need. Unused fields are
// ignored; Build validates that the fields the entry declares are set.
type Params struct {
	// Property is a named property for enum-driven entries.
	Property string
	// Formula is the textual FO/MSO sentence for formula-driven entries.
	// FormulaAST, when non-nil, takes precedence and skips parsing (used
	// by callers that already hold a logic.Formula).
	Formula    string
	FormulaAST logic.Formula
	// T is the integer parameter (treedepth bound, excluded minor size).
	T int
	// Provider optionally supplies elimination-tree witnesses to the
	// treedepth and kernel-mso provers. A scheme built with a provider is
	// graph-specific and must not be cached across graphs.
	Provider func(*graph.Graph) (*rooted.Tree, error)
	// DecompProvider optionally supplies a tree-decomposition witness to
	// the tw-mso prover (a generator's ground-truth record). Like
	// Provider, it binds the scheme to one graph and defeats caching —
	// the engine's shared decomposition cache attaches a graph-agnostic
	// provider after compilation instead.
	DecompProvider func(*graph.Graph) (*treewidth.Decomposition, error)
	// PropertyFunc overrides the named predicate of the universal scheme
	// with an arbitrary Go predicate. Like Provider, it makes the built
	// scheme uncacheable.
	PropertyFunc func(*graph.Graph) (bool, error)
}

// Cacheable reports whether a scheme built from these params may be reused
// for other graphs: closures (witness providers, ad-hoc predicates) bind
// the scheme to one caller and defeat keying by value.
func (p Params) Cacheable() bool {
	return p.Provider == nil && p.DecompProvider == nil && p.PropertyFunc == nil
}

// formula resolves the effective sentence: the pre-parsed AST if present,
// otherwise the parsed textual form.
func (p Params) formula() (logic.Formula, error) {
	if p.FormulaAST != nil {
		return p.FormulaAST, nil
	}
	return logic.Parse(p.Formula)
}

// Info is the introspection record of a registered scheme kind.
type Info struct {
	// Name is the registry key, e.g. "tree-mso".
	Name string `json:"name"`
	// Summary is a one-line description citing the paper result.
	Summary string `json:"summary"`
	// CertBound is the certificate-size bound, e.g. "O(t log n)".
	CertBound string `json:"cert_bound"`
	// GraphClass names the graph class the scheme assumes.
	GraphClass string `json:"graph_class"`
	// Needs lists the params the factory consumes.
	Needs []Param `json:"needs,omitempty"`
	// Enum lists the admissible values of ParamProperty, when finite.
	Enum []string `json:"enum,omitempty"`
	// UsesWitness marks schemes whose prover can exploit a
	// Params.Provider elimination-tree witness; callers holding a
	// witness should only attach it to these (a provider makes the
	// built scheme graph-specific and uncacheable).
	UsesWitness bool `json:"uses_witness,omitempty"`
	// UsesDecomposition marks schemes whose prover can exploit a
	// Params.DecompProvider tree-decomposition witness, with the same
	// cacheability caveat as UsesWitness.
	UsesDecomposition bool `json:"uses_decomposition,omitempty"`
}

// NeedsParam reports whether the entry declares the given param.
func (i Info) NeedsParam(p Param) bool {
	for _, n := range i.Needs {
		if n == p {
			return true
		}
	}
	return false
}

// Entry couples introspection metadata with a factory.
type Entry struct {
	Info
	// Build constructs a scheme from validated params.
	Build func(Params) (cert.Scheme, error)
}

// Registry is a concurrency-safe set of scheme entries.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{entries: map[string]*Entry{}}
}

// Register adds an entry. Duplicate names and nil factories are rejected:
// the registry is the single source of truth, so a silent overwrite would
// hide a wiring bug.
func (r *Registry) Register(e Entry) error {
	if e.Name == "" {
		return fmt.Errorf("registry: entry has no name")
	}
	if e.Build == nil {
		return fmt.Errorf("registry: entry %q has no factory", e.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.Name]; dup {
		return fmt.Errorf("registry: duplicate entry %q", e.Name)
	}
	r.entries[e.Name] = &e
	return nil
}

// MustRegister is Register for wiring code; it panics on error.
func (r *Registry) MustRegister(e Entry) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Lookup returns the entry registered under name.
func (r *Registry) Lookup(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Names returns every registered kind name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// List returns the Info of every entry, sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.Info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// hasFormula reports whether the params carry a sentence in either form.
func (p Params) hasFormula() bool { return p.Formula != "" || p.FormulaAST != nil }

// validate checks that every declared param is supplied and that enum
// params name a known value. Entries declaring both ParamProperty and
// ParamFormula treat them as alternatives: the formula supersedes the enum
// lookup when both are given, and the enum membership check only applies
// when the property actually drives the build.
func (e *Entry) validate(p Params) error {
	needsProp, needsFormula := e.NeedsParam(ParamProperty), e.NeedsParam(ParamFormula)
	if needsProp && needsFormula {
		if p.PropertyFunc == nil && !p.hasFormula() && p.Property == "" {
			return fmt.Errorf("registry: %s: needs a formula or a property (one of %v)", e.Name, e.Enum)
		}
	}
	for _, need := range e.Needs {
		switch need {
		case ParamProperty:
			if p.PropertyFunc != nil {
				break // an ad-hoc predicate supplies its own semantics
			}
			if needsFormula && p.hasFormula() {
				break // the formula supersedes the enum lookup
			}
			if needsFormula && p.Property == "" {
				break // already reported above
			}
			if p.Property == "" {
				return fmt.Errorf("registry: %s: missing property (one of %v)", e.Name, e.Enum)
			}
			if len(e.Enum) > 0 {
				ok := false
				for _, v := range e.Enum {
					if v == p.Property {
						ok = true
						break
					}
				}
				if !ok {
					return fmt.Errorf("registry: %s: unknown property %q (one of %v)", e.Name, p.Property, e.Enum)
				}
			}
		case ParamFormula:
			if needsProp {
				break // alternative pair, handled above
			}
			if !p.hasFormula() {
				return fmt.Errorf("registry: %s: missing formula", e.Name)
			}
		case ParamT:
			if p.T <= 0 {
				return fmt.Errorf("registry: %s: parameter t must be positive, got %d", e.Name, p.T)
			}
		}
	}
	return nil
}

// Build validates params against the entry named name and invokes its
// factory.
func (r *Registry) Build(name string, p Params) (cert.Scheme, error) {
	e, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown scheme %q (known: %v)", name, r.Names())
	}
	if err := e.validate(p); err != nil {
		return nil, err
	}
	return e.Build(p)
}

// defaultRegistry is built once; Default returns it.
var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the registry holding every scheme of the paper. It is
// shared and safe for concurrent use.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = New()
		registerAll(defaultReg)
	})
	return defaultReg
}

// Enum returns the declared property names of any entry in the default
// registry — the single accessor the per-scheme helpers below wrap, so
// the enum lists cannot drift between callers.
func Enum(kind string) []string {
	e, ok := Default().Lookup(kind)
	if !ok {
		return nil
	}
	return append([]string(nil), e.Enum...)
}

// TreeMSOProperties returns the property names of the tree-mso entry in
// the default registry — the one list both the facade and the CLI derive
// their help text from.
func TreeMSOProperties() []string { return Enum("tree-mso") }

// TreewidthMSOProperties returns the property names of the tw-mso entry.
func TreewidthMSOProperties() []string { return Enum("tw-mso") }

// UniversalProperties returns the named predicates of the universal entry.
func UniversalProperties() []string { return Enum("universal") }

// universalPredicates are the named ground-truth predicates of the
// universal baseline scheme.
var universalPredicates = map[string]func(*graph.Graph) (bool, error){
	"diameter-<=2": func(g *graph.Graph) (bool, error) {
		d := g.Diameter()
		return d >= 0 && d <= 2, nil
	},
	"connected": func(g *graph.Graph) (bool, error) { return g.Connected(), nil },
	"is-tree":   func(g *graph.Graph) (bool, error) { return g.IsTree(), nil },
}

func sortedKeys(m map[string]func(*graph.Graph) (bool, error)) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// resolveFormula returns the sentence driving a formula-or-property entry:
// the explicit formula when present (it supersedes the enum lookup),
// otherwise the property name's defining alias sentence from the compile
// layer.
func resolveFormula(kind string, p Params) (logic.Formula, error) {
	if p.hasFormula() {
		return p.formula()
	}
	f, ok := compile.AliasFormula(kind, p.Property)
	if !ok {
		return nil, fmt.Errorf("registry: %s: unknown property %q (one of %v)", kind, p.Property, compile.AliasNames(kind))
	}
	return f, nil
}

// registerAll wires every scheme of the paper into r.
func registerAll(r *Registry) {
	r.MustRegister(Entry{
		Info: Info{
			Name: "tree-mso",
			Summary: "Theorem 2.2: O(1)-bit certification of an MSO/FO sentence on trees " +
				"(library sentences map to hand-built automata, other FO compiles via type discovery)",
			CertBound:  "O(1)",
			GraphClass: "trees",
			Needs:      []Param{ParamProperty, ParamFormula},
			Enum:       compile.AliasNames("tree-mso"),
		},
		Build: func(p Params) (cert.Scheme, error) {
			f, err := resolveFormula("tree-mso", p)
			if err != nil {
				return nil, err
			}
			return compile.Tree(f)
		},
	})
	r.MustRegister(Entry{
		Info: Info{
			Name:       "tree-fo",
			Summary:    "Theorem 2.2 (compiler): O(1)-bit certification of an FO sentence on trees via rank-k type discovery",
			CertBound:  "O(1)",
			GraphClass: "trees",
			Needs:      []Param{ParamFormula},
		},
		Build: func(p Params) (cert.Scheme, error) {
			f, err := p.formula()
			if err != nil {
				return nil, err
			}
			return automata.NewTypeScheme(f)
		},
	})
	r.MustRegister(Entry{
		Info: Info{
			Name:        "treedepth",
			Summary:     "Theorem 2.4: certification of treedepth <= t",
			CertBound:   "O(t log n)",
			GraphClass:  "connected graphs",
			Needs:       []Param{ParamT},
			UsesWitness: true,
		},
		Build: func(p Params) (cert.Scheme, error) {
			return &treedepth.Scheme{T: p.T, ModelProvider: p.Provider}, nil
		},
	})
	r.MustRegister(Entry{
		Info: Info{
			Name:        "kernel-mso",
			Summary:     "Theorem 2.6: certification of an FO/MSO sentence on graphs of treedepth <= t via kernelization",
			CertBound:   "O(t log n + f(t, phi))",
			GraphClass:  "connected graphs of treedepth <= t",
			Needs:       []Param{ParamT, ParamFormula},
			UsesWitness: true,
		},
		Build: func(p Params) (cert.Scheme, error) {
			f, err := p.formula()
			if err != nil {
				return nil, err
			}
			s, err := kernel.NewMSOScheme(p.T, f)
			if err != nil {
				return nil, err
			}
			s.ModelProvider = p.Provider
			return s, nil
		},
	})
	r.MustRegister(Entry{
		Info: Info{
			Name: "tw-mso",
			Summary: "meta-theorem workload (arXiv:2503.19671, arXiv:2112.03195): MSO certification on " +
				"bounded-treewidth graphs via a distributed tree decomposition",
			CertBound:         "O(t log n)",
			GraphClass:        "connected graphs of treewidth <= t",
			Needs:             []Param{ParamProperty, ParamFormula, ParamT},
			Enum:              compile.AliasNames("tw-mso"),
			UsesDecomposition: true,
		},
		Build: func(p Params) (cert.Scheme, error) {
			f, err := resolveFormula("tw-mso", p)
			if err != nil {
				return nil, err
			}
			prop, err := compile.Treewidth(f)
			if err != nil {
				return nil, err
			}
			return &treewidth.MSOScheme{T: p.T, Prop: prop, DecompProvider: p.DecompProvider}, nil
		},
	})
	r.MustRegister(Entry{
		Info: Info{
			Name:       "pt-minor-free",
			Summary:    "Corollary 2.7: certification of P_t-minor-freeness",
			CertBound:  "O(log n)",
			GraphClass: "connected graphs",
			Needs:      []Param{ParamT},
		},
		Build: func(p Params) (cert.Scheme, error) {
			return minor.NewPathMinorFreeScheme(p.T)
		},
	})
	r.MustRegister(Entry{
		Info: Info{
			Name:       "ct-minor-free",
			Summary:    "Corollary 2.7: certification of C_t-minor-freeness",
			CertBound:  "O(log n)",
			GraphClass: "connected graphs",
			Needs:      []Param{ParamT},
		},
		Build: func(p Params) (cert.Scheme, error) {
			return minor.NewCycleMinorFreeScheme(p.T)
		},
	})
	r.MustRegister(Entry{
		Info: Info{
			Name: "universal",
			Summary: "generic upper bound: whole-graph certificates for a named decidable property " +
				"or an arbitrary FO/MSO sentence (decided by model checking)",
			CertBound:  "O(n^2)",
			GraphClass: "connected graphs",
			Needs:      []Param{ParamProperty, ParamFormula},
			Enum:       sortedKeys(universalPredicates),
		},
		Build: func(p Params) (cert.Scheme, error) {
			if p.PropertyFunc != nil {
				return &core.Universal{PropertyName: p.Property, Property: p.PropertyFunc}, nil
			}
			if p.hasFormula() {
				// The formula path model-checks the sentence directly; the
				// enum names below keep their native predicates, which
				// scale past the brute-force evaluator's limits.
				f, err := p.formula()
				if err != nil {
					return nil, err
				}
				return compile.Universal(f)
			}
			pred := universalPredicates[p.Property]
			if pred == nil {
				return nil, fmt.Errorf("registry: universal: unknown property %q", p.Property)
			}
			return &core.Universal{PropertyName: p.Property, Property: pred}, nil
		},
	})
	r.MustRegister(Entry{
		Info: Info{
			Name:       "existential-fo",
			Summary:    "Lemma 2.1: certification of a purely existential FO sentence",
			CertBound:  "O(q log n)",
			GraphClass: "connected graphs",
			Needs:      []Param{ParamFormula},
		},
		Build: func(p Params) (cert.Scheme, error) {
			f, err := p.formula()
			if err != nil {
				return nil, err
			}
			return core.NewExistentialFO(f)
		},
	})
	r.MustRegister(Entry{
		Info: Info{
			Name:       "depth2-fo",
			Summary:    "Lemma 2.1: certification of an FO sentence of quantifier depth <= 2",
			CertBound:  "O(log n)",
			GraphClass: "connected graphs",
			Needs:      []Param{ParamFormula},
		},
		Build: func(p Params) (cert.Scheme, error) {
			f, err := p.formula()
			if err != nil {
				return nil, err
			}
			return core.NewDepth2FO(f)
		},
	})
}
